package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"dgs/internal/dataset"
	"dgs/internal/tle"
)

// altTLE returns a refreshed element set for satellite i of the test
// snapshot: same catalog number (the dataset assigns them positionally),
// different orbit.
func altTLE(t *testing.T, snap *Snapshot, i int, seed int64) tle.TLE {
	t.Helper()
	alt := dataset.Satellites(dataset.SatelliteOptions{
		N:     snap.Sats(),
		Seed:  seed,
		Epoch: snap.Config().Epoch,
	})
	if alt[i].NoradID != snap.tles[i].NoradID {
		t.Fatalf("dataset catalog numbers are not positional: %d vs %d", alt[i].NoradID, snap.tles[i].NoradID)
	}
	return alt[i]
}

func tleLines(t *testing.T, el tle.TLE) (string, string) {
	t.Helper()
	el.Name = ""
	parts := strings.Split(el.Format(), "\n")
	if len(parts) != 2 {
		t.Fatalf("Format returned %d lines", len(parts))
	}
	return parts[0], parts[1]
}

func postJSON(t *testing.T, h http.Handler, url string, body any) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, url, bytes.NewReader(b))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// decodeEnvelope asserts the response carries the unified error envelope
// and returns its code.
func decodeEnvelope(t *testing.T, rec *httptest.ResponseRecorder) string {
	t.Helper()
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("error body is not the envelope: %v (body %q)", err, rec.Body.String())
	}
	if env.Error.Code == "" || env.Error.Message == "" {
		t.Fatalf("envelope missing code or message: %q", rec.Body.String())
	}
	return env.Error.Code
}

func TestV2PlanLiveAndConditional(t *testing.T) {
	s := New(testSnapshot(t), Config{})
	h := s.Handler()

	rec := get(t, h, "/v2/plan")
	if rec.Code != http.StatusOK {
		t.Fatalf("v2 plan status = %d body %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-World-Epoch"); got != "1" {
		t.Fatalf("X-World-Epoch = %q, want 1", got)
	}
	if got := rec.Header().Get("ETag"); got != `"1"` {
		t.Fatalf("ETag = %q, want %q", got, `"1"`)
	}
	var plan planV2Response
	if err := json.Unmarshal(rec.Body.Bytes(), &plan); err != nil {
		t.Fatalf("v2 plan decode: %v", err)
	}
	if plan.Epoch != 1 || plan.TotalSlots != 60 {
		t.Fatalf("v2 plan = epoch %d slots %d, want epoch 1 with the 60-slot live horizon", plan.Epoch, plan.TotalSlots)
	}

	// Revalidation: a client holding the current epoch gets a 304.
	req := httptest.NewRequest(http.MethodGet, "/v2/plan", nil)
	req.Header.Set("If-None-Match", `"1"`)
	cond := httptest.NewRecorder()
	h.ServeHTTP(cond, req)
	if cond.Code != http.StatusNotModified || cond.Body.Len() != 0 {
		t.Fatalf("conditional fetch = %d with %d body bytes, want empty 304", cond.Code, cond.Body.Len())
	}

	// An update publishes epoch 2 and invalidates the validator.
	up := postJSON(t, h, "/v2/updates", Update{Weather: &WeatherUpdate{Seed: 42, ErrFraction: 0.25}})
	if up.Code != http.StatusOK {
		t.Fatalf("update status = %d body %s", up.Code, up.Body.String())
	}
	var res ApplyResult
	if err := json.Unmarshal(up.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 2 || !res.Incremental {
		t.Fatalf("apply result = %+v, want incremental epoch 2", res)
	}

	stale := httptest.NewRequest(http.MethodGet, "/v2/plan", nil)
	stale.Header.Set("If-None-Match", `"1"`)
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, stale)
	if rec2.Code != http.StatusOK {
		t.Fatalf("post-update conditional fetch = %d, want a full 200", rec2.Code)
	}
	var plan2 planV2Response
	if err := json.Unmarshal(rec2.Body.Bytes(), &plan2); err != nil {
		t.Fatal(err)
	}
	if plan2.Epoch != 2 || rec2.Header().Get("X-World-Epoch") != "2" {
		t.Fatalf("post-update plan epoch = %d (header %q), want 2", plan2.Epoch, rec2.Header().Get("X-World-Epoch"))
	}
	if plan2.PlanVersion <= plan.PlanVersion {
		t.Fatalf("plan version did not advance: %d -> %d", plan.PlanVersion, plan2.PlanVersion)
	}
}

func TestUpdatesTLEResolutionAndValidation(t *testing.T) {
	snap := testSnapshot(t)
	s := New(snap, Config{})
	h := s.Handler()

	// By explicit index.
	l1, l2 := tleLines(t, altTLE(t, snap, 3, 99))
	idx := 3
	rec := postJSON(t, h, "/v2/updates", Update{TLEs: []TLEUpdate{{Sat: &idx, Line1: l1, Line2: l2}}})
	if rec.Code != http.StatusOK {
		t.Fatalf("indexed TLE update = %d body %s", rec.Code, rec.Body.String())
	}

	// By catalog number (no index given).
	l1, l2 = tleLines(t, altTLE(t, snap, 5, 100))
	rec = postJSON(t, h, "/v2/updates", Update{TLEs: []TLEUpdate{{Line1: l1, Line2: l2}}})
	if rec.Code != http.StatusOK {
		t.Fatalf("catalog TLE update = %d body %s", rec.Code, rec.Body.String())
	}
	var res ApplyResult
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 3 {
		t.Fatalf("epoch after two updates = %d, want 3", res.Epoch)
	}

	reject := func(name string, body any, wantCode string) {
		t.Helper()
		rec := postJSON(t, h, "/v2/updates", body)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("%s: status = %d body %s, want 400", name, rec.Code, rec.Body.String())
		}
		if code := decodeEnvelope(t, rec); code != wantCode {
			t.Fatalf("%s: code = %q, want %q", name, code, wantCode)
		}
	}
	// Unknown catalog number.
	foreign := altTLE(t, snap, 5, 100)
	foreign.NoradID = 12345
	f1, f2 := tleLines(t, foreign)
	reject("unknown catalog", Update{TLEs: []TLEUpdate{{Line1: f1, Line2: f2}}}, errInvalidArgument)
	// Index out of range.
	bad := snap.Sats()
	reject("sat out of range", Update{TLEs: []TLEUpdate{{Sat: &bad, Line1: l1, Line2: l2}}}, errInvalidArgument)
	// Garbage element lines.
	reject("garbage lines", Update{TLEs: []TLEUpdate{{Line1: "nonsense", Line2: "more nonsense"}}}, errInvalidArgument)
	// Empty update.
	reject("empty update", Update{}, errInvalidArgument)
	// Station removal out of range.
	reject("remove out of range", Update{RemoveStations: []int{99}}, errInvalidArgument)
	// Latitude out of range.
	reject("bad latitude", Update{AddStations: []StationUpdate{{Name: "x", LatDeg: 123}}}, errInvalidArgument)
	// Unknown field in the body (strict decoding).
	raw := httptest.NewRequest(http.MethodPost, "/v2/updates", strings.NewReader(`{"tless":[]}`))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, raw)
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("unknown field: status = %d, want 400", rr.Code)
	}

	// A rejected update must not have published a world.
	if e := s.store.Epoch(); e != 3 {
		t.Fatalf("epoch after rejected updates = %d, want unchanged 3", e)
	}

	// Station membership changes round-trip.
	rec = postJSON(t, h, "/v2/updates", Update{AddStations: []StationUpdate{{
		Name: "awarua", LatDeg: -46.5, LonDeg: 168.4, Beams: 2,
	}}})
	if rec.Code != http.StatusOK {
		t.Fatalf("add station = %d body %s", rec.Code, rec.Body.String())
	}
	hb := get(t, h, "/v1/healthz")
	var health healthResponse
	if err := json.Unmarshal(hb.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Stations != snap.Stations()+1 {
		t.Fatalf("stations after join = %d, want %d", health.Stations, snap.Stations()+1)
	}
	if health.ServingEpoch != 4 {
		t.Fatalf("healthz serving_epoch = %d, want 4", health.ServingEpoch)
	}
	rec = postJSON(t, h, "/v2/updates", Update{RemoveStations: []int{snap.Stations()}})
	if rec.Code != http.StatusOK {
		t.Fatalf("remove station = %d body %s", rec.Code, rec.Body.String())
	}
}

func TestMethodNotAllowedEnvelope(t *testing.T) {
	s := New(testSnapshot(t), Config{})
	h := s.Handler()
	cases := []struct {
		method, url, allow string
	}{
		{http.MethodPost, "/v1/passes", "GET"},
		{http.MethodDelete, "/v1/plan", "GET"},
		{http.MethodPut, "/v2/plan", "GET"},
		{http.MethodGet, "/v2/updates", "POST"},
		{http.MethodPost, "/v2/plan/stream", "GET"},
	}
	for _, c := range cases {
		req := httptest.NewRequest(c.method, c.url, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("%s %s = %d, want 405", c.method, c.url, rec.Code)
			continue
		}
		if got := rec.Header().Get("Allow"); got != c.allow {
			t.Errorf("%s %s Allow = %q, want %q", c.method, c.url, got, c.allow)
		}
		if code := decodeEnvelope(t, rec); code != errMethodNotAllowed {
			t.Errorf("%s %s code = %q, want %q", c.method, c.url, code, errMethodNotAllowed)
		}
	}

	// Parameter errors carry the envelope too.
	rec := get(t, h, "/v1/passes?sat=notanumber")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad param = %d, want 400", rec.Code)
	}
	if code := decodeEnvelope(t, rec); code != errInvalidArgument {
		t.Fatalf("bad param code = %q, want %q", code, errInvalidArgument)
	}
}

// TestV1WireFrozen pins the v1 success bodies: the exact key set (in
// particular, no leaked v2 "epoch" field) and byte-identity with an
// independently constructed encoding. v1 is deprecated but frozen — a
// wire change here is a compatibility break, not a refactor.
func TestV1WireFrozen(t *testing.T) {
	snap := testSnapshot(t)
	s := New(snap, Config{CacheEntries: -1})
	h := s.Handler()

	keysOf := func(body []byte) []string {
		var m map[string]json.RawMessage
		if err := json.Unmarshal(body, &m); err != nil {
			t.Fatalf("decode: %v (body %q)", err, body)
		}
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return keys
	}

	rec := get(t, h, "/v1/passes?hours=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("passes = %d", rec.Code)
	}
	wantKeys := []string{"count", "from", "sat", "station", "to", "windows"}
	if got := keysOf(rec.Body.Bytes()); !equalStrings(got, wantKeys) {
		t.Fatalf("v1 passes keys = %v, want frozen %v", got, wantKeys)
	}
	epoch := snap.Config().Epoch
	want, err := marshalBody(passesWire(snap, passesQuery{sat: -1, gs: -1, from: epoch, to: epoch.Add(time.Hour)}))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec.Body.Bytes(), want) {
		t.Fatal("v1 passes body is not byte-identical to the canonical encoding")
	}

	rec = get(t, h, "/v1/plan?hours=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("plan = %d", rec.Code)
	}
	wantKeys = []string{"assignments", "issued", "slot_s", "slots", "total_slots"}
	if got := keysOf(rec.Body.Bytes()); !equalStrings(got, wantKeys) {
		t.Fatalf("v1 plan keys = %v, want frozen %v", got, wantKeys)
	}
	want, err = marshalBody(planWire(snap.Plan(epoch, time.Hour, snap.Config().Slot)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec.Body.Bytes(), want) {
		t.Fatal("v1 plan body is not byte-identical to the canonical encoding")
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCacheNeverCrossesEpochSwap proves the response cache is epoch-
// keyed: a query answered and cached under epoch 1 must recompute after
// a swap, never serve the stale world's bytes.
func TestCacheNeverCrossesEpochSwap(t *testing.T) {
	snap := testSnapshot(t)
	s := New(snap, Config{})
	h := s.Handler()
	const url = "/v1/passes?sat=0&hours=3"

	cold := get(t, h, url)
	if cold.Code != http.StatusOK {
		t.Fatalf("cold = %d", cold.Code)
	}
	warm := get(t, h, url)
	if hits := s.Stats("passes").Hits; hits != 1 {
		t.Fatalf("warm fetch hits = %d, want 1", hits)
	}

	// Swap the world: satellite 0 gets fresh elements.
	l1, l2 := tleLines(t, altTLE(t, snap, 0, 7))
	idx := 0
	if rec := postJSON(t, h, "/v2/updates", Update{TLEs: []TLEUpdate{{Sat: &idx, Line1: l1, Line2: l2}}}); rec.Code != http.StatusOK {
		t.Fatalf("update = %d body %s", rec.Code, rec.Body.String())
	}

	after := get(t, h, url)
	if after.Code != http.StatusOK {
		t.Fatalf("post-swap = %d", after.Code)
	}
	if st := s.Stats("passes"); st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("post-swap stats = %+v: the swapped epoch must miss the old cache", st)
	}
	if bytes.Equal(after.Body.Bytes(), warm.Body.Bytes()) {
		t.Fatal("post-swap body identical to the cached epoch-1 body — refreshed elements must move the windows")
	}
}

// TestFlightNeverMergesEpochs proves in-flight deduplication is epoch-
// keyed: a request admitted after a swap computes under the new epoch
// even while the identical query is still mid-compute under the old one.
func TestFlightNeverMergesEpochs(t *testing.T) {
	snap := testSnapshot(t)
	s := New(snap, Config{MaxInFlight: 4, CacheEntries: -1})
	h := s.Handler()

	entered := make(chan string, 2)
	release := make(chan struct{})
	s.computeHook = func(key string) {
		entered <- key
		<-release
	}

	const url = "/v1/passes?sat=1&hours=1"
	done := make(chan int, 2)
	go func() { done <- get(t, h, url).Code }()
	key1 := <-entered // epoch-1 leader is mid-compute

	// Swap the world while the leader is held (Apply bypasses the compute
	// chain, so it cannot deadlock against the held flight).
	l1, l2 := tleLines(t, altTLE(t, snap, 1, 8))
	idx := 1
	if _, err := s.store.Apply(Update{TLEs: []TLEUpdate{{Sat: &idx, Line1: l1, Line2: l2}}}); err != nil {
		t.Fatal(err)
	}

	go func() { done <- get(t, h, url).Code }()
	key2 := <-entered // epoch-2 request must be its own leader

	if key1 == key2 {
		t.Fatalf("identical queries across a swap merged into one flight: %q", key1)
	}
	if !strings.HasPrefix(key1, "e1|") || !strings.HasPrefix(key2, "e2|") {
		t.Fatalf("keys not epoch-prefixed: %q, %q", key1, key2)
	}
	close(release)
	for i := 0; i < 2; i++ {
		if code := <-done; code != http.StatusOK {
			t.Fatalf("request %d finished %d", i, code)
		}
	}
}

func TestReadyzLifecycle(t *testing.T) {
	unblock := make(chan struct{})
	store := OpenStore(func() (*Snapshot, error) {
		<-unblock
		return testSnapshot(t), nil
	}, StoreConfig{})
	s := NewWithStore(store, Config{})
	h := s.Handler()

	rec := get(t, h, "/v2/readyz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while building = %d, want 503", rec.Code)
	}
	if code := decodeEnvelope(t, rec); code != errNotReady {
		t.Fatalf("readyz code = %q, want %q", code, errNotReady)
	}
	if rec := get(t, h, "/v2/plan"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("v2 plan while building = %d, want 503", rec.Code)
	}
	if rec := get(t, h, "/v1/healthz"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while building = %d, want 503", rec.Code)
	}

	close(unblock)
	<-store.Ready()
	if err := store.Err(); err != nil {
		t.Fatal(err)
	}
	rec = get(t, h, "/v2/readyz")
	if rec.Code != http.StatusOK {
		t.Fatalf("readyz after build = %d, want 200", rec.Code)
	}
	var ready readyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &ready); err != nil {
		t.Fatal(err)
	}
	if !ready.Ready || ready.Epoch != 1 {
		t.Fatalf("readyz = %+v, want ready at epoch 1", ready)
	}

	failed := OpenStore(func() (*Snapshot, error) {
		return nil, fmt.Errorf("synthetic load failure")
	}, StoreConfig{})
	<-failed.Ready()
	sf := NewWithStore(failed, Config{})
	rec = get(t, sf.Handler(), "/v2/readyz")
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("readyz after failed build = %d, want 500", rec.Code)
	}
	if code := decodeEnvelope(t, rec); code != errInternal {
		t.Fatalf("failed-build code = %q, want %q", code, errInternal)
	}
}

// sseEventHeader is one parsed stream event (name and id line; payload
// is checked by the caller when needed).
type sseEventHeader struct {
	name string
	id   string
	data string
}

func readSSEEvent(r *bufio.Reader) (sseEventHeader, error) {
	var ev sseEventHeader
	seen := false
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return ev, err
		}
		line = strings.TrimRight(line, "\n")
		if line == "" {
			if seen {
				return ev, nil
			}
			continue
		}
		seen = true
		switch {
		case strings.HasPrefix(line, "event: "):
			ev.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "id: "):
			ev.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "data: "):
			ev.data = strings.TrimPrefix(line, "data: ")
		}
	}
}

// TestPlanStreamBroadcast is the acceptance streaming test: 100
// concurrent subscribers each receive the full plan on connect, then the
// delta for an update posted afterwards, and drain cleanly when the
// store shuts down.
func TestPlanStreamBroadcast(t *testing.T) {
	s := New(testSnapshot(t), Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	const subscribers = 100
	type subErr struct {
		id  int
		err error
	}
	connected := make(chan io.Closer, subscribers)
	errs := make(chan subErr, subscribers)
	var wg sync.WaitGroup
	for i := 0; i < subscribers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			fail := func(err error) { errs <- subErr{id, err} }
			resp, err := http.Get(srv.URL + "/v2/plan/stream")
			if err != nil {
				fail(err)
				connected <- io.NopCloser(nil)
				return
			}
			connected <- resp.Body
			if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
				fail(fmt.Errorf("content type %q", ct))
				return
			}
			r := bufio.NewReader(resp.Body)
			ev, err := readSSEEvent(r)
			if err != nil {
				fail(fmt.Errorf("initial event: %w", err))
				return
			}
			if ev.name != "plan" || ev.id != "1" {
				fail(fmt.Errorf("initial event %q id %q, want plan id 1", ev.name, ev.id))
				return
			}
			var full planV2Response
			if err := json.Unmarshal([]byte(ev.data), &full); err != nil {
				fail(fmt.Errorf("initial payload: %w", err))
				return
			}
			if full.Epoch != 1 {
				fail(fmt.Errorf("initial payload epoch %d", full.Epoch))
				return
			}
			ev, err = readSSEEvent(r)
			if err != nil {
				fail(fmt.Errorf("delta event: %w", err))
				return
			}
			if ev.name != "delta" || ev.id != "2" {
				fail(fmt.Errorf("delta event %q id %q, want delta id 2", ev.name, ev.id))
				return
			}
			var delta planDeltaEvent
			if err := json.Unmarshal([]byte(ev.data), &delta); err != nil {
				fail(fmt.Errorf("delta payload: %w", err))
				return
			}
			if delta.Epoch != 2 {
				fail(fmt.Errorf("delta payload epoch %d", delta.Epoch))
				return
			}
			// The store is closed after the delta: the stream must end
			// (graceful drain), not hang.
			if _, err := readSSEEvent(r); err != io.EOF && !strings.Contains(fmt.Sprint(err), "connection") {
				fail(fmt.Errorf("stream did not drain: %v", err))
			}
		}(i)
	}

	// Wait for every subscriber to be registered before publishing, so all
	// 100 provably receive the broadcast rather than racing the update.
	bodies := make([]io.Closer, 0, subscribers)
	for i := 0; i < subscribers; i++ {
		bodies = append(bodies, <-connected)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.store.Subscribers() < subscribers {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d subscribers registered", s.store.Subscribers(), subscribers)
		}
		time.Sleep(time.Millisecond)
	}

	up := postJSON(t, s.Handler(), "/v2/updates", Update{Weather: &WeatherUpdate{Seed: 9, ErrFraction: 0.4}})
	if up.Code != http.StatusOK {
		t.Fatalf("update = %d body %s", up.Code, up.Body.String())
	}

	// Let the deltas flush, then shut the store down and require every
	// stream to finish.
	drained := make(chan struct{})
	go func() { wg.Wait(); close(drained) }()
	time.AfterFunc(50*time.Millisecond, s.store.Close)
	select {
	case <-drained:
	case <-time.After(30 * time.Second):
		t.Fatal("streams did not drain within 30s of store close")
	}
	close(errs)
	for e := range errs {
		t.Errorf("subscriber %d: %v", e.id, e.err)
	}
	for _, b := range bodies {
		if b != nil {
			b.Close()
		}
	}
}
