package serve

import (
	"fmt"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dgs/internal/core"
	"dgs/internal/frames"
	"dgs/internal/linkbudget"
	"dgs/internal/sgp4"
	"dgs/internal/station"
	"dgs/internal/tle"
	"dgs/internal/weather"
)

// StoreConfig tunes the live-world store. The zero value selects the
// defaults.
type StoreConfig struct {
	// PlanHorizon is the span of the continuously maintained live plan,
	// anchored at the snapshot epoch (default 1 h).
	PlanHorizon time.Duration
	// SubBuffer is each stream subscriber's event buffer; a subscriber
	// that falls this many events behind is disconnected rather than
	// allowed to stall the writer (default 16).
	SubBuffer int
}

func (c StoreConfig) withDefaults() StoreConfig {
	if c.PlanHorizon <= 0 {
		c.PlanHorizon = time.Hour
	}
	if c.SubBuffer <= 0 {
		c.SubBuffer = 16
	}
	return c
}

// World is one immutable published world version: the epoch counter, the
// read-optimized query snapshot, and the live plan with its prebuilt wire
// body. Readers acquire a World, serve entirely from it, and release it —
// an epoch swap never mutates a published World, so a request observes
// one consistent world even while updates land.
type World struct {
	// Epoch is the monotonic world version (1 is the first build). In a
	// federated world it is the front tier's own counter, bumped on every
	// merged rebuild.
	Epoch uint64
	// Built is when this world version was assembled.
	Built time.Time
	// Snap serves pass, link-budget, and ad-hoc plan queries.
	Snap WorldView
	// Plan is the live incrementally maintained plan.
	Plan *core.Plan
	// ChangedSlots is how many plan slots the producing update re-evaluated
	// (the full horizon for the initial build).
	ChangedSlots int

	// EpochVec, set only on federated worlds, is the composite epoch
	// vector: component s is the world epoch of shard s this merged world
	// was built from (the last-known epoch for a currently missing shard).
	// Monolith worlds leave it nil, which keeps their wire bodies frozen.
	EpochVec []uint64
	// Missing, set only on federated worlds, lists the shards whose
	// partitions this world does not cover (degraded serving).
	Missing []int

	planJSON []byte // canonical /v2/plan body, no trailing newline
	refs     atomic.Int64
}

// etag is the strong validator of every epoch-tagged v2 response: the
// bare epoch for monolith worlds, the dotted epoch vector for federated
// ones (so a 304 certifies every component, not just the local counter).
func (w *World) etag() string {
	if len(w.EpochVec) == 0 {
		return `"` + strconv.FormatUint(w.Epoch, 10) + `"`
	}
	var b []byte
	b = append(b, '"')
	for i, e := range w.EpochVec {
		if i > 0 {
			b = append(b, '.')
		}
		b = strconv.AppendUint(b, e, 10)
	}
	b = append(b, '"')
	return string(b)
}

// Degraded reports whether this world covers only part of the
// constellation (one or more shards missing).
func (w *World) Degraded() bool { return len(w.Missing) > 0 }

// Refs returns the number of requests currently serving from this world.
// Draining is observable, not enforced: a retired world stays valid until
// its readers finish and the garbage collector reclaims it.
func (w *World) Refs() int64 { return w.refs.Load() }

// Release returns a World acquired from Store.Acquire.
func (w *World) Release() { w.refs.Add(-1) }

// Store owns the versioned world: an atomic pointer to the current World,
// the single-writer incremental planner that revises it, and the plan
// stream subscribers. Readers are wait-free (one atomic load); writers
// serialize on the store mutex.
type Store struct {
	cfg StoreConfig

	cur atomic.Pointer[World]

	mu       sync.Mutex // serializes Apply and world derivation
	ip       *core.IncrementalPlanner
	tles     []tle.TLE
	fc       *weather.Forecast
	retired  []*World
	buildErr error
	closed   bool

	ready chan struct{} // closed once the first world (or buildErr) lands

	hub *subHub
}

// NewStore builds a store over a loaded snapshot, synchronously building
// the first world (epoch 1) — including its live plan — before returning.
func NewStore(snap *Snapshot, cfg StoreConfig) *Store {
	s := newStoreShell(cfg)
	s.publishInitial(snap)
	return s
}

// OpenStore builds the first world asynchronously: the store is returned
// immediately and Acquire fails (and /v2/readyz reports 503) until load
// and the initial plan build finish. Ready unblocks either way; Err
// reports a failed load.
func OpenStore(load func() (*Snapshot, error), cfg StoreConfig) *Store {
	s := newStoreShell(cfg)
	go func() {
		snap, err := load()
		if err != nil {
			s.mu.Lock()
			s.buildErr = err
			s.mu.Unlock()
			close(s.ready)
			return
		}
		s.publishInitial(snap)
	}()
	return s
}

func newStoreShell(cfg StoreConfig) *Store {
	cfg = cfg.withDefaults()
	return &Store{
		cfg:   cfg,
		ready: make(chan struct{}),
		hub:   newSubHub(cfg.SubBuffer),
	}
}

func (s *Store) publishInitial(snap *Snapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ip, err := core.NewIncrementalPlanner(snap.planSnaps, snap.net, core.IncrementalConfig{
		Start:         snap.cfg.Epoch,
		Horizon:       s.cfg.PlanHorizon,
		Slot:          snap.cfg.Slot,
		GenBitsPerSec: snap.genRate,
		Radio:         snap.radio,
		Forecast:      snap.fc,
		Workers:       snap.cfg.Workers,
	})
	if err != nil {
		s.buildErr = err
		close(s.ready)
		return
	}
	s.ip = ip
	s.tles = append([]tle.TLE(nil), snap.tles...)
	s.fc = snap.fc
	w := &World{
		Epoch:        1,
		Built:        time.Now(),
		Snap:         snap,
		Plan:         ip.Plan(),
		ChangedSlots: ip.LastChangedSlots(),
	}
	w.planJSON = marshalPlanV2(w)
	s.cur.Store(w)
	close(s.ready)
}

// Ready returns a channel closed once the first world is published (or
// its build failed — check Err).
func (s *Store) Ready() <-chan struct{} { return s.ready }

// Err reports a failed initial build.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.buildErr
}

// Acquire returns the current world with its refcount taken, or false
// before the first world is published. Callers must Release.
func (s *Store) Acquire() (*World, bool) {
	w := s.cur.Load()
	if w == nil {
		return nil, false
	}
	w.refs.Add(1)
	return w, true
}

// Current returns the current world without taking a reference (nil
// before the first publish). For point-in-time inspection only.
func (s *Store) Current() *World { return s.cur.Load() }

// Epoch returns the current world epoch (0 before the first publish).
func (s *Store) Epoch() uint64 {
	if w := s.cur.Load(); w != nil {
		return w.Epoch
	}
	return 0
}

// RetiredWorlds returns how many superseded worlds still have active
// readers (the drain queue length).
func (s *Store) RetiredWorlds() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, w := range s.retired {
		if w.Refs() > 0 {
			n++
		}
	}
	return n
}

// HasNorad reports whether a satellite with the given catalog number is
// in the constellation. The TLE file watcher uses it to skip elements
// for satellites the store does not track (a shared elements file can
// cover more than one operator's fleet).
func (s *Store) HasNorad(id int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, el := range s.tles {
		if el.NoradID == id {
			return true
		}
	}
	return false
}

// Subscribers returns the number of connected plan-stream subscribers.
func (s *Store) Subscribers() int { return s.hub.count() }

// ---- the delta-ingestion wire format ----

// Update is the POST /v2/updates request body: any combination of TLE
// refreshes, a weather revision, and station membership changes, applied
// atomically as one new world epoch.
type Update struct {
	TLEs           []TLEUpdate     `json:"tles,omitempty"`
	Weather        *WeatherUpdate  `json:"weather,omitempty"`
	AddStations    []StationUpdate `json:"add_stations,omitempty"`
	RemoveStations []int           `json:"remove_stations,omitempty"`
}

// TLEUpdate replaces one satellite's elements. Sat selects by index; when
// omitted the catalog (NORAD) number on line 1 selects the satellite.
type TLEUpdate struct {
	Sat   *int   `json:"sat,omitempty"`
	Name  string `json:"name,omitempty"`
	Line1 string `json:"line1"`
	Line2 string `json:"line2"`
}

// WeatherUpdate replaces the forecast: a fresh synthetic weather field
// (seeded) with the given saturated error fraction, or clear sky.
type WeatherUpdate struct {
	Seed        uint64  `json:"seed"`
	ErrFraction float64 `json:"err_fraction"`
	ClearSky    bool    `json:"clear_sky,omitempty"`
}

// StationUpdate adds a ground station to the network.
type StationUpdate struct {
	Name       string  `json:"name"`
	LatDeg     float64 `json:"lat_deg"`
	LonDeg     float64 `json:"lon_deg"`
	AltKm      float64 `json:"alt_km"`
	MinElevDeg float64 `json:"min_elev_deg,omitempty"` // default 10°
	TxCapable  bool    `json:"tx_capable,omitempty"`
	Beams      int     `json:"beams,omitempty"`
}

// ApplyResult describes the world the update produced.
type ApplyResult struct {
	Epoch        uint64 `json:"epoch"`
	PlanVersion  int    `json:"plan_version"`
	ChangedSlots int    `json:"changed_slots"`
	Incremental  bool   `json:"incremental"`
}

// updateError marks an Apply failure caused by the update itself (the
// HTTP layer maps it to 400 rather than 500).
type updateError struct{ error }

func badUpdate(format string, args ...any) error {
	return updateError{fmt.Errorf(format, args...)}
}

// IsUpdateError reports whether err is a malformed-update failure.
func IsUpdateError(err error) bool {
	_, ok := err.(updateError)
	return ok
}

// Apply validates an update, revises the world through the incremental
// planner, and publishes the next epoch. The whole update is applied
// atomically: validation happens before any state changes, so a rejected
// update leaves the world untouched. Returns the published result and
// broadcasts a plan delta to stream subscribers.
func (s *Store) Apply(u Update) (ApplyResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ApplyResult{}, fmt.Errorf("serve: store closed")
	}
	old := s.cur.Load()
	if old == nil {
		return ApplyResult{}, fmt.Errorf("serve: store not ready")
	}
	if len(u.TLEs) == 0 && u.Weather == nil && len(u.AddStations) == 0 && len(u.RemoveStations) == 0 {
		return ApplyResult{}, badUpdate("empty update: no tles, weather, or station changes")
	}

	// Validate everything before mutating anything.
	type resolvedTLE struct {
		sat  int
		el   tle.TLE
		prop *sgp4.Propagator
	}
	resolved := make([]resolvedTLE, 0, len(u.TLEs))
	byNorad := make(map[int]int, len(s.tles))
	for i, el := range s.tles {
		byNorad[el.NoradID] = i
	}
	for i, tu := range u.TLEs {
		el, err := tle.ParseLines(tu.Name, tu.Line1, tu.Line2)
		if err != nil {
			return ApplyResult{}, badUpdate("tles[%d]: %v", i, err)
		}
		sat := -1
		if tu.Sat != nil {
			sat = *tu.Sat
			if sat < 0 || sat >= len(s.tles) {
				return ApplyResult{}, badUpdate("tles[%d]: sat %d out of range [0, %d)", i, sat, len(s.tles))
			}
		} else {
			j, ok := byNorad[el.NoradID]
			if !ok {
				return ApplyResult{}, badUpdate("tles[%d]: catalog number %d not in the constellation", i, el.NoradID)
			}
			sat = j
		}
		prop, err := sgp4.New(el)
		if err != nil {
			return ApplyResult{}, badUpdate("tles[%d]: %v", i, err)
		}
		resolved = append(resolved, resolvedTLE{sat: sat, el: el, prop: prop})
	}
	adds := make([]*station.Station, 0, len(u.AddStations))
	nextID := len(s.ip.Stations())
	for i, su := range u.AddStations {
		if su.LatDeg < -90 || su.LatDeg > 90 {
			return ApplyResult{}, badUpdate("add_stations[%d]: latitude %g out of [-90, 90]", i, su.LatDeg)
		}
		minElev := su.MinElevDeg
		if minElev <= 0 {
			minElev = 10
		}
		adds = append(adds, &station.Station{
			ID:              nextID,
			Name:            su.Name,
			Location:        frames.NewGeodeticDeg(su.LatDeg, su.LonDeg, su.AltKm),
			TxCapable:       su.TxCapable,
			Terminal:        linkbudget.DGSTerminal(),
			MinElevationRad: minElev * math.Pi / 180,
			Beams:           su.Beams,
		})
		nextID++
	}
	for i, j := range u.RemoveStations {
		if j < 0 || j >= len(s.ip.Stations()) {
			return ApplyResult{}, badUpdate("remove_stations[%d]: station %d out of range [0, %d)", i, j, len(s.ip.Stations()))
		}
	}

	// Apply. Planner preconditions are established above, so errors here
	// are store bugs, not client input.
	for _, r := range resolved {
		if err := s.ip.UpdateTLE(r.sat, r.prop); err != nil {
			return ApplyResult{}, err
		}
		s.tles[r.sat] = r.el
	}
	if u.Weather != nil {
		if u.Weather.ClearSky {
			s.fc = nil
		} else {
			errFrac := u.Weather.ErrFraction
			if errFrac <= 0 {
				errFrac = old.Snap.Config().ForecastErr
			}
			s.fc = weather.NewForecast(weather.NewField(u.Weather.Seed), errFrac)
		}
		s.ip.SetForecast(s.fc)
	}
	for _, st := range adds {
		if _, err := s.ip.AddStation(st); err != nil {
			return ApplyResult{}, err
		}
	}
	for _, j := range u.RemoveStations {
		if err := s.ip.RemoveStation(j); err != nil {
			return ApplyResult{}, err
		}
	}

	plan := s.ip.Replan()
	snap := old.Snap.(*Snapshot).rederive(s.ip, s.tles, s.fc)
	w := &World{
		Epoch:        old.Epoch + 1,
		Built:        time.Now(),
		Snap:         snap,
		Plan:         plan,
		ChangedSlots: s.ip.LastChangedSlots(),
	}
	w.planJSON = marshalPlanV2(w)
	delta := marshalPlanDelta(w, old.Plan)
	s.cur.Store(w)
	s.retired = append(s.retired, old)
	s.pruneRetiredLocked()
	s.broadcast(sseEvent("delta", w.Epoch, delta))
	return ApplyResult{
		Epoch:        w.Epoch,
		PlanVersion:  plan.Version,
		ChangedSlots: s.ip.LastChangedSlots(),
		Incremental:  s.ip.LastReplanIncremental(),
	}, nil
}

// pruneRetiredLocked drops retired worlds with no remaining readers.
func (s *Store) pruneRetiredLocked() {
	kept := s.retired[:0]
	for _, w := range s.retired {
		if w.Refs() > 0 {
			kept = append(kept, w)
		}
	}
	for i := len(kept); i < len(s.retired); i++ {
		s.retired[i] = nil
	}
	s.retired = kept
}

// Subscribe registers a plan-stream subscriber: the returned channel
// first-in carries nothing (the caller writes the returned initial event
// itself), then receives one prebuilt SSE event per epoch swap. The
// channel is closed when the store shuts down or the subscriber falls too
// far behind. Callers must Unsubscribe.
func (s *Store) Subscribe() (id int, ch <-chan []byte, initial []byte, err error) {
	w := s.cur.Load()
	if w == nil {
		return 0, nil, nil, fmt.Errorf("serve: store not ready")
	}
	id, c, ok := s.hub.add()
	if !ok {
		return 0, nil, nil, fmt.Errorf("serve: store closed")
	}
	return id, c, sseEvent("plan", w.Epoch, w.planJSON), nil
}

// Unsubscribe removes a subscriber. Safe after the store evicted it.
func (s *Store) Unsubscribe(id int) { s.hub.remove(id) }

// broadcast delivers an event to every subscriber (see subHub.broadcast).
func (s *Store) broadcast(ev []byte) { s.hub.broadcast(ev) }

// Close shuts the store down: further Applies fail and every stream
// subscriber's channel is closed so streaming handlers finish — the
// graceful-drain half of server shutdown. Published worlds stay readable.
func (s *Store) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.hub.closeAll()
}

// sseEvent formats one server-sent event: the event name, the world epoch
// as the event id, and a single-line JSON payload.
func sseEvent(event string, epoch uint64, data []byte) []byte {
	return fmt.Appendf(nil, "event: %s\nid: %d\ndata: %s\n\n", event, epoch, data)
}
