package serve

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"dgs/internal/core"
	"dgs/internal/pool"
)

// Config tunes the serving layer. The zero value selects the defaults.
type Config struct {
	// MaxInFlight bounds concurrent compute-path requests (the admission
	// semaphore). Default 2× the worker-pool default (GOMAXPROCS): enough
	// to keep the pool busy while one request fans out, without stacking
	// an unbounded compute backlog. Cache hits are not gated.
	MaxInFlight int
	// CacheEntries bounds the response LRU (default 1024; negative
	// disables caching).
	CacheEntries int
	// Pprof mounts net/http/pprof under /debug/pprof/.
	Pprof bool
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 2 * pool.DefaultWorkers()
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 1024
	}
	return c
}

// Server serves pass-prediction, link-budget, and planning queries over
// the store's versioned world, plus the v2 live-plan surface: epoch-
// tagged responses, delta ingestion, and the plan stream. The query hot
// path is: response cache → admission gate → in-flight deduplication →
// compute. Cache and flight keys carry the world epoch, so a response
// computed against one world version is never served for another, and
// requests from different epochs never merge into one computation.
type Server struct {
	store WorldSource
	cfg   Config
	cache *lruCache
	fl    flightGroup
	adm   *admission
	start time.Time

	passesStats   endpointStats
	planStats     endpointStats
	linkStats     endpointStats
	updatesStats  endpointStats
	optimizeStats endpointStats

	// jobs owns the async /v2/optimize job table and execution queue.
	jobs *jobManager

	vars *expvar.Map

	// computeHook, when set by tests, runs inside the flight leader before
	// the computation — the hook deterministic concurrency tests use to
	// hold a compute slot open.
	computeHook func(key string)
}

// New builds a Server over a loaded snapshot, synchronously publishing
// the first world (epoch 1).
func New(snap *Snapshot, cfg Config) *Server {
	return NewWithStore(NewStore(snap, StoreConfig{}), cfg)
}

// NewWithStore builds a Server over an existing store (possibly still
// building its first world — queries 503 until it lands).
func NewWithStore(store *Store, cfg Config) *Server {
	return NewWithSource(store, cfg)
}

// NewWithSource builds a Server over any world source — a single-process
// Store or a Federator fronting shard backends. The handlers are
// identical either way; only the source decides where worlds come from.
func NewWithSource(src WorldSource, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		store: src,
		cfg:   cfg,
		cache: newLRU(cfg.CacheEntries),
		adm:   newAdmission(cfg.MaxInFlight),
		start: time.Now(),
		jobs:  newJobManager(),
	}
	s.vars = new(expvar.Map).Init()
	s.vars.Set("passes", s.passesStats.vars())
	s.vars.Set("plan", s.planStats.vars())
	s.vars.Set("linkbudget", s.linkStats.vars())
	s.vars.Set("updates", s.updatesStats.vars())
	s.vars.Set("optimize", s.optimizeStats.vars())
	s.vars.Set("optimize_jobs", expvar.Func(func() any { return s.jobs.count() }))
	s.vars.Set("cache_entries", expvar.Func(func() any { return s.cache.len() }))
	s.vars.Set("inflight", expvar.Func(func() any { return s.adm.inUse() }))
	s.vars.Set("inflight_limit", expvar.Func(func() any { return s.adm.limit() }))
	s.vars.Set("uptime_s", expvar.Func(func() any { return time.Since(s.start).Seconds() }))
	s.vars.Set("epoch", expvar.Func(func() any { return s.store.Epoch() }))
	s.vars.Set("stream_subscribers", expvar.Func(func() any { return s.store.Subscribers() }))
	s.vars.Set("worlds_retired", expvar.Func(func() any { return s.store.RetiredWorlds() }))
	return s
}

// Store returns the server's world store when it is a single-process
// *Store, nil when the server fronts a different source (shutdown should
// call Source().Close() instead).
func (s *Server) Store() *Store {
	st, _ := s.store.(*Store)
	return st
}

// Source returns the server's world source (shutdown calls Close on it).
func (s *Server) Source() WorldSource { return s.store }

// Stats snapshots one endpoint's counters ("passes", "plan",
// "linkbudget", "updates").
func (s *Server) Stats(endpoint string) EndpointStats {
	switch endpoint {
	case "passes":
		return s.passesStats.snapshot()
	case "plan":
		return s.planStats.snapshot()
	case "linkbudget":
		return s.linkStats.snapshot()
	case "updates":
		return s.updatesStats.snapshot()
	case "optimize":
		return s.optimizeStats.snapshot()
	}
	return EndpointStats{}
}

// Handler returns the server's routing table. Every endpoint is
// registered with a method pattern plus a method-less fallback, so a
// wrong-method request gets a 405 with an Allow header and the standard
// error envelope instead of the mux's plain-text default.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	routes := []struct {
		method, path string
		h            http.HandlerFunc
	}{
		{http.MethodGet, "/v1/passes", s.handlePasses},
		{http.MethodGet, "/v1/plan", s.handlePlan},
		{http.MethodGet, "/v1/linkbudget", s.handleLinkBudget},
		{http.MethodGet, "/v1/healthz", s.handleHealthz},
		{http.MethodGet, "/v2/passes", s.handlePassesV2},
		{http.MethodGet, "/v2/plan", s.handlePlanV2},
		{http.MethodGet, "/v2/plan/stream", s.handlePlanStream},
		{http.MethodPost, "/v2/updates", s.handleUpdates},
		{http.MethodPost, "/v2/optimize", s.handleOptimizeCreate},
		{http.MethodGet, "/v2/optimize/{id}", s.handleOptimizeGet},
		{http.MethodGet, "/v2/optimize/{id}/stream", s.handleOptimizeStream},
		{http.MethodGet, "/v2/readyz", s.handleReadyz},
		{http.MethodGet, "/debug/vars", s.handleVars},
	}
	for _, r := range routes {
		mux.HandleFunc(r.method+" "+r.path, r.h)
		mux.HandleFunc(r.path, methodNotAllowed(r.method))
	}
	if s.cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// ---- request plumbing ----

// Machine-readable error codes of the unified envelope.
const (
	errInvalidArgument  = "invalid_argument"
	errMethodNotAllowed = "method_not_allowed"
	errOverloaded       = "overloaded"
	errNotReady         = "not_ready"
	errNotFound         = "not_found"
	errInternal         = "internal"
)

// httpError carries a client-visible failure out of parameter parsing.
type httpError struct {
	status int
	code   string
	msg    string
}

func badRequest(format string, args ...any) *httpError {
	return &httpError{status: http.StatusBadRequest, code: errInvalidArgument, msg: fmt.Sprintf(format, args...)}
}

// writeError emits the unified JSON error envelope:
// {"error":{"code":"...","message":"..."}}. The code is a stable machine
// string; only the message is free-form.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	type inner struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	}
	b, _ := json.Marshal(struct {
		Error inner `json:"error"`
	}{inner{Code: code, Message: msg}})
	w.Write(append(b, '\n'))
}

func writeHTTPError(w http.ResponseWriter, herr *httpError) {
	writeError(w, herr.status, herr.code, herr.msg)
}

func writeOverloaded(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusTooManyRequests, errOverloaded, "overloaded: admission limit reached, retry later")
}

func writeBody(w http.ResponseWriter, b []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(b)))
	w.WriteHeader(http.StatusOK)
	w.Write(b)
}

// marshalBody renders a response value to its canonical wire bytes. Only
// ever called with marshal-safe values, so an error is a server bug.
func marshalBody(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// methodNotAllowed is the fallback handler behind each method-pattern
// route: 405, the allowed method in the Allow header, and the envelope.
func methodNotAllowed(allow string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", allow)
		writeError(w, http.StatusMethodNotAllowed, errMethodNotAllowed, allow+" only")
	}
}

// acquireWorld takes a reference on the current world and stamps the
// response with its epoch. Before the first world is published it writes
// the 503 (or the build failure) and returns false. Callers must Release
// the world when done.
func (s *Server) acquireWorld(w http.ResponseWriter) (*World, bool) {
	world, ok := s.store.Acquire()
	if !ok {
		if err := s.store.Err(); err != nil {
			writeError(w, http.StatusInternalServerError, errInternal, err.Error())
		} else {
			writeError(w, http.StatusServiceUnavailable, errNotReady, "world snapshot still building, retry shortly")
		}
		return nil, false
	}
	w.Header().Set("X-World-Epoch", strconv.FormatUint(world.Epoch, 10))
	if len(world.EpochVec) > 0 {
		var b []byte
		for i, e := range world.EpochVec {
			if i > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendUint(b, e, 10)
		}
		w.Header().Set("X-World-Epoch-Vector", string(b))
	}
	if world.Degraded() {
		var b []byte
		for i, sh := range world.Missing {
			if i > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendInt(b, int64(sh), 10)
		}
		w.Header().Set("X-World-Degraded", string(b))
	}
	return world, true
}

// epochETag is the strong validator of a monolith epoch-tagged response;
// federated worlds use the dotted vector form (World.etag).
func epochETag(epoch uint64) string { return `"` + strconv.FormatUint(epoch, 10) + `"` }

// notModified handles conditional revalidation: when the client's
// If-None-Match already names this world's validator — the epoch, or in
// federated serving the full epoch vector — reply 304 with no body.
func notModified(w http.ResponseWriter, r *http.Request, world *World) bool {
	etag := world.etag()
	w.Header().Set("ETag", etag)
	if inm := r.Header.Get("If-None-Match"); inm == etag || inm == "*" {
		w.WriteHeader(http.StatusNotModified)
		return true
	}
	return false
}

// serveComputed runs the cache → admission → dedup → compute chain for a
// canonical query key (which embeds the world epoch, so neither layer
// can bridge an epoch swap). nocache bypasses the LRU (both read and
// fill) but keeps deduplication: a cache-busting client must not amplify
// compute.
func (s *Server) serveComputed(w http.ResponseWriter, st *endpointStats, key string, nocache bool, compute func() ([]byte, error)) {
	if !nocache {
		if b, ok := s.cache.get(key); ok {
			st.hits.Add(1)
			writeBody(w, b)
			return
		}
	}
	st.misses.Add(1)
	if !s.adm.tryAcquire() {
		st.rejected.Add(1)
		writeOverloaded(w)
		return
	}
	defer s.adm.release()
	b, err, shared := s.fl.do(key, func() ([]byte, error) {
		if s.computeHook != nil {
			s.computeHook(key)
		}
		return compute()
	})
	if shared {
		st.dedups.Add(1)
	}
	if err != nil {
		st.errors.Add(1)
		writeError(w, http.StatusInternalServerError, errInternal, err.Error())
		return
	}
	if !nocache && !shared {
		s.cache.add(key, b)
	}
	writeBody(w, b)
}

// parseTime reads an RFC3339 time parameter, defaulting when absent.
func parseTime(r *http.Request, name string, def time.Time) (time.Time, *httpError) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	t, err := time.Parse(time.RFC3339, v)
	if err != nil {
		return time.Time{}, badRequest("bad %s: %v (want RFC3339)", name, err)
	}
	return t, nil
}

// parseInt reads an integer parameter, defaulting when absent.
func parseInt(r *http.Request, name string, def int) (int, *httpError) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, badRequest("bad %s: %v", name, err)
	}
	return n, nil
}

// parseFloat reads a float parameter, defaulting when absent.
func parseFloat(r *http.Request, name string, def float64) (float64, *httpError) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, badRequest("bad %s: %v", name, err)
	}
	return f, nil
}

// parseDuration reads a Go duration parameter, defaulting when absent.
func parseDuration(r *http.Request, name string, def time.Duration) (time.Duration, *httpError) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		return 0, badRequest("bad %s: %v (want Go duration, e.g. 90m)", name, err)
	}
	return d, nil
}

// checkSpan validates a [from, to) query range against the world's
// servable horizon.
func checkSpan(snap WorldView, from, to time.Time) *httpError {
	if !to.After(from) {
		return badRequest("empty range: to %s is not after from %s", to.Format(time.RFC3339), from.Format(time.RFC3339))
	}
	if !snap.InSpan(from) || !snap.InSpan(to) {
		c := snap.Config()
		return badRequest("range [%s, %s) outside servable span [%s, %s]",
			from.Format(time.RFC3339), to.Format(time.RFC3339),
			c.Epoch.Format(time.RFC3339), c.Epoch.Add(c.MaxSpan).Format(time.RFC3339))
	}
	return nil
}

// ---- pass queries (/v1/passes, /v2/passes) ----

// passWindow is the wire form of one predicted contact window.
type passWindow struct {
	Sat     int       `json:"sat"`
	Station int       `json:"station"`
	Start   time.Time `json:"start"`
	End     time.Time `json:"end"`
	Rise    time.Time `json:"rise"`
	// Set is omitted for a contact still in progress at the end of the
	// scanned range.
	Set       *time.Time `json:"set,omitempty"`
	MaxDurSec float64    `json:"max_duration_s"`
}

type passesResponse struct {
	From    time.Time    `json:"from"`
	To      time.Time    `json:"to"`
	Sat     int          `json:"sat"`
	Station int          `json:"station"`
	Count   int          `json:"count"`
	Windows []passWindow `json:"windows"`
}

// passesV2Response is the epoch-tagged v2 shape.
type passesV2Response struct {
	Epoch uint64 `json:"epoch"`
	passesResponse
}

// passesQuery is the parsed, validated, grid-quantized pass query.
type passesQuery struct {
	sat, gs  int
	from, to time.Time
}

func parsePassesQuery(r *http.Request, snap WorldView) (passesQuery, *httpError) {
	var q passesQuery
	sat, herr := parseInt(r, "sat", -1)
	if herr == nil && (sat < -1 || sat >= snap.Sats()) {
		herr = badRequest("sat %d out of range [0, %d) (-1 or absent = all)", sat, snap.Sats())
	}
	var gs int
	if herr == nil {
		gs, herr = parseInt(r, "station", -1)
		if herr == nil && (gs < -1 || gs >= snap.Stations()) {
			herr = badRequest("station %d out of range [0, %d) (-1 or absent = all)", gs, snap.Stations())
		}
	}
	var from time.Time
	if herr == nil {
		from, herr = parseTime(r, "from", snap.Config().Epoch)
	}
	var hours float64
	if herr == nil {
		hours, herr = parseFloat(r, "hours", 3)
		if herr == nil && (hours <= 0 || hours > snap.Config().MaxSpan.Hours()) {
			herr = badRequest("hours %g out of range (0, %g]", hours, snap.Config().MaxSpan.Hours())
		}
	}
	if herr != nil {
		return q, herr
	}
	from = snap.Quantize(from)
	to := from.Add(time.Duration(hours * float64(time.Hour)))
	if herr := checkSpan(snap, from, to); herr != nil {
		return q, herr
	}
	q.sat, q.gs, q.from, q.to = sat, gs, from, to
	return q, nil
}

func passesWire(snap WorldView, q passesQuery) passesResponse {
	ws := snap.Passes(q.from, q.to, q.sat, q.gs)
	resp := passesResponse{
		From: q.from, To: q.to, Sat: q.sat, Station: q.gs,
		Count: len(ws), Windows: make([]passWindow, 0, len(ws)),
	}
	for _, pw := range ws {
		out := passWindow{
			Sat: pw.Sat, Station: pw.Station,
			Start: pw.Start, End: pw.End, Rise: pw.Rise,
			MaxDurSec: pw.End.Sub(pw.Start).Seconds(),
		}
		if !pw.Set.IsZero() {
			set := pw.Set
			out.Set = &set
		}
		resp.Windows = append(resp.Windows, out)
	}
	return resp
}

func (s *Server) handlePasses(w http.ResponseWriter, r *http.Request) {
	st := &s.passesStats
	t0 := time.Now()
	defer func() { st.observe(time.Since(t0)) }()

	world, ok := s.acquireWorld(w)
	if !ok {
		return
	}
	defer world.Release()
	q, herr := parsePassesQuery(r, world.Snap)
	if herr != nil {
		writeHTTPError(w, herr)
		return
	}
	key := fmt.Sprintf("e%d|passes|%d|%d|%d|%d", world.Epoch, q.sat, q.gs, q.from.UnixNano(), q.to.UnixNano())
	nocache := r.URL.Query().Get("nocache") != ""
	s.serveComputed(w, st, key, nocache, func() ([]byte, error) {
		return marshalBody(passesWire(world.Snap, q))
	})
}

func (s *Server) handlePassesV2(w http.ResponseWriter, r *http.Request) {
	st := &s.passesStats
	t0 := time.Now()
	defer func() { st.observe(time.Since(t0)) }()

	world, ok := s.acquireWorld(w)
	if !ok {
		return
	}
	defer world.Release()
	q, herr := parsePassesQuery(r, world.Snap)
	if herr != nil {
		writeHTTPError(w, herr)
		return
	}
	if notModified(w, r, world) {
		return
	}
	key := fmt.Sprintf("e%d|v2passes|%d|%d|%d|%d", world.Epoch, q.sat, q.gs, q.from.UnixNano(), q.to.UnixNano())
	nocache := r.URL.Query().Get("nocache") != ""
	s.serveComputed(w, st, key, nocache, func() ([]byte, error) {
		return marshalBody(passesV2Response{Epoch: world.Epoch, passesResponse: passesWire(world.Snap, q)})
	})
}

// ---- plan queries (/v1/plan, /v2/plan) ----

type planAssignment struct {
	Sat     int     `json:"sat"`
	Station int     `json:"station"`
	RateBps float64 `json:"rate_bps"`
	Weight  float64 `json:"weight"`
}

type planSlot struct {
	Start       time.Time        `json:"start"`
	Assignments []planAssignment `json:"assignments"`
}

type planResponse struct {
	Issued      time.Time  `json:"issued"`
	SlotSec     float64    `json:"slot_s"`
	TotalSlots  int        `json:"total_slots"`
	Assignments int        `json:"assignments"`
	Slots       []planSlot `json:"slots"`
}

// planV2Response is the epoch-tagged live-plan shape. The federated
// fields are omitempty so monolith bodies stay byte-frozen: a
// single-process world never sets them.
type planV2Response struct {
	Epoch       uint64 `json:"epoch"`
	PlanVersion int    `json:"plan_version"`
	// EpochVec is the composite per-shard epoch vector of a federated
	// world; Degraded and MissingShards mark partial coverage after a
	// shard loss (degradation is an annotated response, never an error).
	EpochVec      []uint64 `json:"epoch_vector,omitempty"`
	Degraded      bool     `json:"degraded,omitempty"`
	MissingShards []int    `json:"missing_shards,omitempty"`
	planResponse
}

// planDeltaEvent is the SSE delta payload: the slots an epoch swap
// changed (with their full new assignment sets) and the slots whose
// assignments vanished entirely.
type planDeltaEvent struct {
	Epoch         uint64      `json:"epoch"`
	PlanVersion   int         `json:"plan_version"`
	EpochVec      []uint64    `json:"epoch_vector,omitempty"`
	Degraded      bool        `json:"degraded,omitempty"`
	MissingShards []int       `json:"missing_shards,omitempty"`
	Changed       []planSlot  `json:"changed"`
	Removed       []time.Time `json:"removed"`
}

func planWire(plan *core.Plan) planResponse {
	resp := planResponse{
		Issued:     plan.Issued,
		SlotSec:    plan.SlotDur.Seconds(),
		TotalSlots: len(plan.Slots),
		Slots:      make([]planSlot, 0, len(plan.Slots)),
	}
	for _, sl := range plan.Slots {
		if len(sl.Assignments) == 0 {
			continue
		}
		out := planSlot{Start: sl.Start, Assignments: make([]planAssignment, 0, len(sl.Assignments))}
		for _, a := range sl.Assignments {
			out.Assignments = append(out.Assignments, planAssignment{
				Sat: a.Sat, Station: a.Station, RateBps: a.PlannedRateBps, Weight: a.Weight,
			})
			resp.Assignments++
		}
		resp.Slots = append(resp.Slots, out)
	}
	return resp
}

// marshalPlanV2 renders a world's live plan to its canonical v2 body
// (no trailing newline — the SSE path embeds it as one data line).
func marshalPlanV2(w *World) []byte {
	b, err := json.Marshal(planV2Response{
		Epoch:         w.Epoch,
		PlanVersion:   w.Plan.Version,
		EpochVec:      w.EpochVec,
		Degraded:      w.Degraded(),
		MissingShards: w.Missing,
		planResponse:  planWire(w.Plan),
	})
	if err != nil {
		panic(fmt.Sprintf("serve: plan marshal: %v", err))
	}
	return b
}

// marshalPlanDelta diffs the new world's plan against the previous plan
// on their shared slot grid and renders the delta event payload.
func marshalPlanDelta(w *World, prev *core.Plan) []byte {
	ev := planDeltaEvent{
		Epoch:         w.Epoch,
		PlanVersion:   w.Plan.Version,
		EpochVec:      w.EpochVec,
		Degraded:      w.Degraded(),
		MissingShards: w.Missing,
		Changed:       []planSlot{},
		Removed:       []time.Time{},
	}
	wireSlot := func(sl core.Slot) planSlot {
		out := planSlot{Start: sl.Start, Assignments: make([]planAssignment, 0, len(sl.Assignments))}
		for _, a := range sl.Assignments {
			out.Assignments = append(out.Assignments, planAssignment{
				Sat: a.Sat, Station: a.Station, RateBps: a.PlannedRateBps, Weight: a.Weight,
			})
		}
		return out
	}
	for k := range w.Plan.Slots {
		ns := w.Plan.Slots[k]
		var os *core.Slot
		if prev != nil && k < len(prev.Slots) {
			os = &prev.Slots[k]
		}
		same := os != nil && len(os.Assignments) == len(ns.Assignments)
		if same {
			for i := range ns.Assignments {
				if os.Assignments[i] != ns.Assignments[i] {
					same = false
					break
				}
			}
		}
		if same {
			continue
		}
		if len(ns.Assignments) == 0 {
			if os != nil && len(os.Assignments) > 0 {
				ev.Removed = append(ev.Removed, ns.Start)
			}
			continue
		}
		ev.Changed = append(ev.Changed, wireSlot(ns))
	}
	b, err := json.Marshal(ev)
	if err != nil {
		panic(fmt.Sprintf("serve: delta marshal: %v", err))
	}
	return b
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	st := &s.planStats
	t0 := time.Now()
	defer func() { st.observe(time.Since(t0)) }()

	world, ok := s.acquireWorld(w)
	if !ok {
		return
	}
	defer world.Release()
	snap := world.Snap

	from, herr := parseTime(r, "from", snap.Config().Epoch)
	var hours float64
	if herr == nil {
		hours, herr = parseFloat(r, "hours", 1)
		if herr == nil && (hours <= 0 || hours > snap.Config().MaxSpan.Hours()) {
			herr = badRequest("hours %g out of range (0, %g]", hours, snap.Config().MaxSpan.Hours())
		}
	}
	var slot time.Duration
	if herr == nil {
		slot, herr = parseDuration(r, "slot", snap.Config().Slot)
		if herr == nil && (slot < time.Second || slot > time.Hour) {
			herr = badRequest("slot %v out of range [1s, 1h]", slot)
		}
	}
	if herr != nil {
		writeHTTPError(w, herr)
		return
	}
	from = snap.Quantize(from)
	horizon := time.Duration(hours * float64(time.Hour))
	if herr := checkSpan(snap, from, from.Add(horizon)); herr != nil {
		writeHTTPError(w, herr)
		return
	}

	key := fmt.Sprintf("e%d|plan|%d|%d|%d", world.Epoch, from.UnixNano(), horizon, slot)
	nocache := r.URL.Query().Get("nocache") != ""
	s.serveComputed(w, st, key, nocache, func() ([]byte, error) {
		return marshalBody(planWire(snap.Plan(from, horizon, slot)))
	})
}

// handlePlanV2 serves the live, incrementally maintained plan: the
// prebuilt epoch-tagged body, with ETag/If-None-Match revalidation so a
// client holding the current epoch pays one 304 instead of a body.
func (s *Server) handlePlanV2(w http.ResponseWriter, r *http.Request) {
	st := &s.planStats
	t0 := time.Now()
	defer func() { st.observe(time.Since(t0)) }()

	world, ok := s.acquireWorld(w)
	if !ok {
		return
	}
	defer world.Release()
	if notModified(w, r, world) {
		return
	}
	st.hits.Add(1) // prebuilt: the live plan is always a cache hit
	writeBody(w, append(world.planJSON, '\n'))
}

// ---- /v2/updates ----

func (s *Server) handleUpdates(w http.ResponseWriter, r *http.Request) {
	st := &s.updatesStats
	t0 := time.Now()
	defer func() { st.observe(time.Since(t0)) }()

	st.misses.Add(1)
	if !s.adm.tryAcquire() {
		st.rejected.Add(1)
		writeOverloaded(w)
		return
	}
	defer s.adm.release()

	var u Update
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&u); err != nil {
		writeError(w, http.StatusBadRequest, errInvalidArgument, fmt.Sprintf("bad update body: %v", err))
		return
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, errInvalidArgument, "trailing data after update object")
		return
	}
	res, err := s.store.Apply(u)
	switch {
	case err == nil:
	case IsUpdateError(err):
		writeError(w, http.StatusBadRequest, errInvalidArgument, err.Error())
		return
	case s.store.Current() == nil:
		writeError(w, http.StatusServiceUnavailable, errNotReady, err.Error())
		return
	default:
		st.errors.Add(1)
		writeError(w, http.StatusServiceUnavailable, errNotReady, err.Error())
		return
	}
	w.Header().Set("X-World-Epoch", strconv.FormatUint(res.Epoch, 10))
	b, merr := marshalBody(res)
	if merr != nil {
		st.errors.Add(1)
		writeError(w, http.StatusInternalServerError, errInternal, merr.Error())
		return
	}
	writeBody(w, b)
}

// ---- /v2/plan/stream ----

// handlePlanStream is the SSE plan feed: one `plan` event with the full
// current plan on connect, then one `delta` event per epoch swap. The
// stream ends when the client disconnects or the store shuts down (the
// graceful-drain path — the handler returns, letting Shutdown finish).
func (s *Server) handlePlanStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errInternal, "streaming unsupported by this connection")
		return
	}
	id, ch, initial, err := s.store.Subscribe()
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, errNotReady, err.Error())
		return
	}
	defer s.store.Unsubscribe(id)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-World-Epoch", strconv.FormatUint(s.store.Epoch(), 10))
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(initial); err != nil {
		return
	}
	fl.Flush()
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return // store closed or we were evicted as a slow consumer
			}
			if _, err := w.Write(ev); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// ---- /v1/linkbudget ----

func (s *Server) handleLinkBudget(w http.ResponseWriter, r *http.Request) {
	st := &s.linkStats
	t0 := time.Now()
	defer func() { st.observe(time.Since(t0)) }()

	world, ok := s.acquireWorld(w)
	if !ok {
		return
	}
	defer world.Release()
	snap := world.Snap

	sat, herr := parseInt(r, "sat", -1)
	if herr == nil && (sat < 0 || sat >= snap.Sats()) {
		herr = badRequest("sat required in [0, %d)", snap.Sats())
	}
	var gs int
	if herr == nil {
		gs, herr = parseInt(r, "station", -1)
		if herr == nil && (gs < 0 || gs >= snap.Stations()) {
			herr = badRequest("station required in [0, %d)", snap.Stations())
		}
	}
	var at time.Time
	if herr == nil {
		at, herr = parseTime(r, "t", snap.Config().Epoch)
	}
	var lead time.Duration
	if herr == nil {
		lead, herr = parseDuration(r, "lead", 0)
		if herr == nil && lead < 0 {
			herr = badRequest("lead must be >= 0")
		}
	}
	if herr != nil {
		writeHTTPError(w, herr)
		return
	}
	at = snap.Quantize(at)
	if !snap.InSpan(at) {
		c := snap.Config()
		writeError(w, http.StatusBadRequest, errInvalidArgument, fmt.Sprintf("t %s outside servable span [%s, %s]",
			at.Format(time.RFC3339), c.Epoch.Format(time.RFC3339), c.Epoch.Add(c.MaxSpan).Format(time.RFC3339)))
		return
	}

	// Link budgets are a single cheap evaluation: gated by admission for
	// honest overload behavior, but not worth a cache entry.
	st.misses.Add(1)
	if !s.adm.tryAcquire() {
		st.rejected.Add(1)
		writeOverloaded(w)
		return
	}
	lb := snap.LinkBudgetAt(sat, gs, at, lead)
	s.adm.release()
	b, err := marshalBody(lb)
	if err != nil {
		st.errors.Add(1)
		writeError(w, http.StatusInternalServerError, errInternal, err.Error())
		return
	}
	writeBody(w, b)
}

// ---- /v1/healthz, /v2/readyz, /debug/vars ----

type healthResponse struct {
	OK       bool      `json:"ok"`
	Sats     int       `json:"sats"`
	Stations int       `json:"stations"`
	Epoch    time.Time `json:"epoch"`
	SlotSec  float64   `json:"slot_s"`
	MaxSpanH float64   `json:"max_span_h"`
	UptimeS  float64   `json:"uptime_s"`
	// ServingEpoch is the world version answering queries right now;
	// WorldBuilt is when that snapshot was assembled.
	ServingEpoch uint64    `json:"serving_epoch"`
	WorldBuilt   time.Time `json:"world_built"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	world, ok := s.acquireWorld(w)
	if !ok {
		return
	}
	defer world.Release()
	c := world.Snap.Config()
	b, err := marshalBody(healthResponse{
		OK:           true,
		Sats:         world.Snap.Sats(),
		Stations:     world.Snap.Stations(),
		Epoch:        c.Epoch,
		SlotSec:      c.Slot.Seconds(),
		MaxSpanH:     c.MaxSpan.Hours(),
		UptimeS:      time.Since(s.start).Seconds(),
		ServingEpoch: world.Epoch,
		WorldBuilt:   world.Built,
	})
	if err != nil {
		writeError(w, http.StatusInternalServerError, errInternal, err.Error())
		return
	}
	writeBody(w, b)
}

type readyResponse struct {
	Ready bool   `json:"ready"`
	Epoch uint64 `json:"epoch"`
}

// handleReadyz reports world availability: 200 once the first world is
// published, 503 while it is still building (or failed to build).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	world, ok := s.acquireWorld(w)
	if !ok {
		return
	}
	defer world.Release()
	b, err := marshalBody(readyResponse{Ready: true, Epoch: world.Epoch})
	if err != nil {
		writeError(w, http.StatusInternalServerError, errInternal, err.Error())
		return
	}
	writeBody(w, b)
}

// handleVars serves the server's expvar map. The map is private to the
// Server (not expvar.Publish'd): multiple servers can coexist in one
// process (tests, benchmarks) without colliding in the global registry.
func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"dgs_api\": %s}\n", s.vars.String())
}

// drainBody is kept for handlers that must consume a request body fully;
// currently unused but retained for middleware symmetry.
var _ = io.Discard
