package serve

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"dgs/internal/pool"
)

// Config tunes the serving layer. The zero value selects the defaults.
type Config struct {
	// MaxInFlight bounds concurrent compute-path requests (the admission
	// semaphore). Default 2× the worker-pool default (GOMAXPROCS): enough
	// to keep the pool busy while one request fans out, without stacking
	// an unbounded compute backlog. Cache hits are not gated.
	MaxInFlight int
	// CacheEntries bounds the response LRU (default 1024; negative
	// disables caching).
	CacheEntries int
	// Pprof mounts net/http/pprof under /debug/pprof/.
	Pprof bool
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 2 * pool.DefaultWorkers()
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 1024
	}
	return c
}

// Server serves pass-prediction, link-budget, and planning queries over a
// world Snapshot. The hot path is: response cache → admission gate →
// in-flight deduplication → compute. Every layer preserves byte identity
// with the cold computation.
type Server struct {
	snap  *Snapshot
	cfg   Config
	cache *lruCache
	fl    flightGroup
	adm   *admission
	start time.Time

	passesStats endpointStats
	planStats   endpointStats
	linkStats   endpointStats

	vars *expvar.Map

	// computeHook, when set by tests, runs inside the flight leader before
	// the computation — the hook deterministic concurrency tests use to
	// hold a compute slot open.
	computeHook func(key string)
}

// New builds a Server over a loaded snapshot.
func New(snap *Snapshot, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		snap:  snap,
		cfg:   cfg,
		cache: newLRU(cfg.CacheEntries),
		adm:   newAdmission(cfg.MaxInFlight),
		start: time.Now(),
	}
	s.vars = new(expvar.Map).Init()
	s.vars.Set("passes", s.passesStats.vars())
	s.vars.Set("plan", s.planStats.vars())
	s.vars.Set("linkbudget", s.linkStats.vars())
	s.vars.Set("cache_entries", expvar.Func(func() any { return s.cache.len() }))
	s.vars.Set("inflight", expvar.Func(func() any { return s.adm.inUse() }))
	s.vars.Set("inflight_limit", expvar.Func(func() any { return s.adm.limit() }))
	s.vars.Set("uptime_s", expvar.Func(func() any { return time.Since(s.start).Seconds() }))
	return s
}

// Stats snapshots one endpoint's counters ("passes", "plan", "linkbudget").
func (s *Server) Stats(endpoint string) EndpointStats {
	switch endpoint {
	case "passes":
		return s.passesStats.snapshot()
	case "plan":
		return s.planStats.snapshot()
	case "linkbudget":
		return s.linkStats.snapshot()
	}
	return EndpointStats{}
}

// Handler returns the server's routing table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/passes", s.handlePasses)
	mux.HandleFunc("/v1/plan", s.handlePlan)
	mux.HandleFunc("/v1/linkbudget", s.handleLinkBudget)
	mux.HandleFunc("/v1/healthz", s.handleHealthz)
	mux.HandleFunc("/debug/vars", s.handleVars)
	if s.cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// ---- request plumbing ----

// httpError carries a client-visible failure out of parameter parsing.
type httpError struct {
	code int
	msg  string
}

func badRequest(format string, args ...any) *httpError {
	return &httpError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	b, _ := json.Marshal(map[string]string{"error": msg})
	w.Write(append(b, '\n'))
}

func writeBody(w http.ResponseWriter, b []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(b)))
	w.WriteHeader(http.StatusOK)
	w.Write(b)
}

// marshalBody renders a response value to its canonical wire bytes. Only
// ever called with marshal-safe values, so an error is a server bug.
func marshalBody(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// serveComputed runs the cache → admission → dedup → compute chain for a
// canonical query key. nocache bypasses the LRU (both read and fill) but
// keeps deduplication: a cache-busting client must not amplify compute.
func (s *Server) serveComputed(w http.ResponseWriter, st *endpointStats, key string, nocache bool, compute func() ([]byte, error)) {
	if !nocache {
		if b, ok := s.cache.get(key); ok {
			st.hits.Add(1)
			writeBody(w, b)
			return
		}
	}
	st.misses.Add(1)
	if !s.adm.tryAcquire() {
		st.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "overloaded: admission limit reached, retry later")
		return
	}
	defer s.adm.release()
	b, err, shared := s.fl.do(key, func() ([]byte, error) {
		if s.computeHook != nil {
			s.computeHook(key)
		}
		return compute()
	})
	if shared {
		st.dedups.Add(1)
	}
	if err != nil {
		st.errors.Add(1)
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if !nocache && !shared {
		s.cache.add(key, b)
	}
	writeBody(w, b)
}

// parseTime reads an RFC3339 time parameter, defaulting when absent.
func parseTime(r *http.Request, name string, def time.Time) (time.Time, *httpError) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	t, err := time.Parse(time.RFC3339, v)
	if err != nil {
		return time.Time{}, badRequest("bad %s: %v (want RFC3339)", name, err)
	}
	return t, nil
}

// parseInt reads an integer parameter, defaulting when absent.
func parseInt(r *http.Request, name string, def int) (int, *httpError) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, badRequest("bad %s: %v", name, err)
	}
	return n, nil
}

// parseFloat reads a float parameter, defaulting when absent.
func parseFloat(r *http.Request, name string, def float64) (float64, *httpError) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, badRequest("bad %s: %v", name, err)
	}
	return f, nil
}

// parseDuration reads a Go duration parameter, defaulting when absent.
func parseDuration(r *http.Request, name string, def time.Duration) (time.Duration, *httpError) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		return 0, badRequest("bad %s: %v (want Go duration, e.g. 90m)", name, err)
	}
	return d, nil
}

// checkSpan validates a [from, to) query range against the snapshot's
// servable horizon.
func (s *Server) checkSpan(from, to time.Time) *httpError {
	if !to.After(from) {
		return badRequest("empty range: to %s is not after from %s", to.Format(time.RFC3339), from.Format(time.RFC3339))
	}
	if !s.snap.InSpan(from) || !s.snap.InSpan(to) {
		c := s.snap.Config()
		return badRequest("range [%s, %s) outside servable span [%s, %s]",
			from.Format(time.RFC3339), to.Format(time.RFC3339),
			c.Epoch.Format(time.RFC3339), c.Epoch.Add(c.MaxSpan).Format(time.RFC3339))
	}
	return nil
}

func methodGet(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return false
	}
	return true
}

// ---- /v1/passes ----

// passWindow is the wire form of one predicted contact window.
type passWindow struct {
	Sat     int       `json:"sat"`
	Station int       `json:"station"`
	Start   time.Time `json:"start"`
	End     time.Time `json:"end"`
	Rise    time.Time `json:"rise"`
	// Set is omitted for a contact still in progress at the end of the
	// scanned range.
	Set       *time.Time `json:"set,omitempty"`
	MaxDurSec float64    `json:"max_duration_s"`
}

type passesResponse struct {
	From    time.Time    `json:"from"`
	To      time.Time    `json:"to"`
	Sat     int          `json:"sat"`
	Station int          `json:"station"`
	Count   int          `json:"count"`
	Windows []passWindow `json:"windows"`
}

func (s *Server) handlePasses(w http.ResponseWriter, r *http.Request) {
	if !methodGet(w, r) {
		return
	}
	st := &s.passesStats
	t0 := time.Now()
	defer func() { st.observe(time.Since(t0)) }()

	sat, herr := parseInt(r, "sat", -1)
	if herr == nil && (sat < -1 || sat >= s.snap.Sats()) {
		herr = badRequest("sat %d out of range [0, %d) (-1 or absent = all)", sat, s.snap.Sats())
	}
	var gs int
	if herr == nil {
		gs, herr = parseInt(r, "station", -1)
		if herr == nil && (gs < -1 || gs >= s.snap.Stations()) {
			herr = badRequest("station %d out of range [0, %d) (-1 or absent = all)", gs, s.snap.Stations())
		}
	}
	var from time.Time
	if herr == nil {
		from, herr = parseTime(r, "from", s.snap.Config().Epoch)
	}
	var hours float64
	if herr == nil {
		hours, herr = parseFloat(r, "hours", 3)
		if herr == nil && (hours <= 0 || hours > s.snap.Config().MaxSpan.Hours()) {
			herr = badRequest("hours %g out of range (0, %g]", hours, s.snap.Config().MaxSpan.Hours())
		}
	}
	if herr != nil {
		writeError(w, herr.code, herr.msg)
		return
	}
	from = s.snap.Quantize(from)
	to := from.Add(time.Duration(hours * float64(time.Hour)))
	if herr := s.checkSpan(from, to); herr != nil {
		writeError(w, herr.code, herr.msg)
		return
	}

	key := fmt.Sprintf("passes|%d|%d|%d|%d", sat, gs, from.UnixNano(), to.UnixNano())
	nocache := r.URL.Query().Get("nocache") != ""
	s.serveComputed(w, st, key, nocache, func() ([]byte, error) {
		ws := s.snap.Passes(from, to, sat, gs)
		resp := passesResponse{
			From: from, To: to, Sat: sat, Station: gs,
			Count: len(ws), Windows: make([]passWindow, 0, len(ws)),
		}
		for _, pw := range ws {
			out := passWindow{
				Sat: pw.Sat, Station: pw.Station,
				Start: pw.Start, End: pw.End, Rise: pw.Rise,
				MaxDurSec: pw.End.Sub(pw.Start).Seconds(),
			}
			if !pw.Set.IsZero() {
				set := pw.Set
				out.Set = &set
			}
			resp.Windows = append(resp.Windows, out)
		}
		return marshalBody(resp)
	})
}

// ---- /v1/plan ----

type planAssignment struct {
	Sat     int     `json:"sat"`
	Station int     `json:"station"`
	RateBps float64 `json:"rate_bps"`
	Weight  float64 `json:"weight"`
}

type planSlot struct {
	Start       time.Time        `json:"start"`
	Assignments []planAssignment `json:"assignments"`
}

type planResponse struct {
	Issued      time.Time  `json:"issued"`
	SlotSec     float64    `json:"slot_s"`
	TotalSlots  int        `json:"total_slots"`
	Assignments int        `json:"assignments"`
	Slots       []planSlot `json:"slots"`
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if !methodGet(w, r) {
		return
	}
	st := &s.planStats
	t0 := time.Now()
	defer func() { st.observe(time.Since(t0)) }()

	from, herr := parseTime(r, "from", s.snap.Config().Epoch)
	var hours float64
	if herr == nil {
		hours, herr = parseFloat(r, "hours", 1)
		if herr == nil && (hours <= 0 || hours > s.snap.Config().MaxSpan.Hours()) {
			herr = badRequest("hours %g out of range (0, %g]", hours, s.snap.Config().MaxSpan.Hours())
		}
	}
	var slot time.Duration
	if herr == nil {
		slot, herr = parseDuration(r, "slot", s.snap.Config().Slot)
		if herr == nil && (slot < time.Second || slot > time.Hour) {
			herr = badRequest("slot %v out of range [1s, 1h]", slot)
		}
	}
	if herr != nil {
		writeError(w, herr.code, herr.msg)
		return
	}
	from = s.snap.Quantize(from)
	horizon := time.Duration(hours * float64(time.Hour))
	if herr := s.checkSpan(from, from.Add(horizon)); herr != nil {
		writeError(w, herr.code, herr.msg)
		return
	}

	key := fmt.Sprintf("plan|%d|%d|%d", from.UnixNano(), horizon, slot)
	nocache := r.URL.Query().Get("nocache") != ""
	s.serveComputed(w, st, key, nocache, func() ([]byte, error) {
		plan := s.snap.Plan(from, horizon, slot)
		resp := planResponse{
			Issued:     plan.Issued,
			SlotSec:    plan.SlotDur.Seconds(),
			TotalSlots: len(plan.Slots),
			Slots:      make([]planSlot, 0, len(plan.Slots)),
		}
		for _, sl := range plan.Slots {
			if len(sl.Assignments) == 0 {
				continue
			}
			out := planSlot{Start: sl.Start, Assignments: make([]planAssignment, 0, len(sl.Assignments))}
			for _, a := range sl.Assignments {
				out.Assignments = append(out.Assignments, planAssignment{
					Sat: a.Sat, Station: a.Station, RateBps: a.PlannedRateBps, Weight: a.Weight,
				})
				resp.Assignments++
			}
			resp.Slots = append(resp.Slots, out)
		}
		return marshalBody(resp)
	})
}

// ---- /v1/linkbudget ----

func (s *Server) handleLinkBudget(w http.ResponseWriter, r *http.Request) {
	if !methodGet(w, r) {
		return
	}
	st := &s.linkStats
	t0 := time.Now()
	defer func() { st.observe(time.Since(t0)) }()

	sat, herr := parseInt(r, "sat", -1)
	if herr == nil && (sat < 0 || sat >= s.snap.Sats()) {
		herr = badRequest("sat required in [0, %d)", s.snap.Sats())
	}
	var gs int
	if herr == nil {
		gs, herr = parseInt(r, "station", -1)
		if herr == nil && (gs < 0 || gs >= s.snap.Stations()) {
			herr = badRequest("station required in [0, %d)", s.snap.Stations())
		}
	}
	var at time.Time
	if herr == nil {
		at, herr = parseTime(r, "t", s.snap.Config().Epoch)
	}
	var lead time.Duration
	if herr == nil {
		lead, herr = parseDuration(r, "lead", 0)
		if herr == nil && lead < 0 {
			herr = badRequest("lead must be >= 0")
		}
	}
	if herr != nil {
		writeError(w, herr.code, herr.msg)
		return
	}
	at = s.snap.Quantize(at)
	if !s.snap.InSpan(at) {
		c := s.snap.Config()
		writeError(w, http.StatusBadRequest, fmt.Sprintf("t %s outside servable span [%s, %s]",
			at.Format(time.RFC3339), c.Epoch.Format(time.RFC3339), c.Epoch.Add(c.MaxSpan).Format(time.RFC3339)))
		return
	}

	// Link budgets are a single cheap evaluation: gated by admission for
	// honest overload behavior, but not worth a cache entry.
	st.misses.Add(1)
	if !s.adm.tryAcquire() {
		st.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "overloaded: admission limit reached, retry later")
		return
	}
	lb := s.snap.LinkBudgetAt(sat, gs, at, lead)
	s.adm.release()
	b, err := marshalBody(lb)
	if err != nil {
		st.errors.Add(1)
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeBody(w, b)
}

// ---- /v1/healthz and /debug/vars ----

type healthResponse struct {
	OK       bool      `json:"ok"`
	Sats     int       `json:"sats"`
	Stations int       `json:"stations"`
	Epoch    time.Time `json:"epoch"`
	SlotSec  float64   `json:"slot_s"`
	MaxSpanH float64   `json:"max_span_h"`
	UptimeS  float64   `json:"uptime_s"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !methodGet(w, r) {
		return
	}
	c := s.snap.Config()
	b, err := marshalBody(healthResponse{
		OK:       true,
		Sats:     s.snap.Sats(),
		Stations: s.snap.Stations(),
		Epoch:    c.Epoch,
		SlotSec:  c.Slot.Seconds(),
		MaxSpanH: c.MaxSpan.Hours(),
		UptimeS:  time.Since(s.start).Seconds(),
	})
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeBody(w, b)
}

// handleVars serves the server's expvar map. The map is private to the
// Server (not expvar.Publish'd): multiple servers can coexist in one
// process (tests, benchmarks) without colliding in the global registry.
func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	if !methodGet(w, r) {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"dgs_api\": %s}\n", s.vars.String())
}
