package serve

import (
	"expvar"
	"sync"
	"time"

	"dgs/internal/metrics"
)

// maxLatSamples bounds each endpoint's latency distribution; when full the
// window resets rather than growing without bound under sustained load.
const maxLatSamples = 1 << 16

// endpointStats is one endpoint's counters and latency distribution. The
// counters are expvar types so /debug/vars serves them directly; the
// latency histogram reuses metrics.Dist behind a mutex and is published as
// a p50/p90/p99 summary.
type endpointStats struct {
	hits     expvar.Int // responses served from the LRU cache
	misses   expvar.Int // responses that went to the compute path
	dedups   expvar.Int // responses shared from another request's flight
	rejected expvar.Int // 429s from the admission gate
	errors   expvar.Int // 5xx responses

	mu  sync.Mutex
	lat metrics.Dist // request latency, milliseconds
}

// observe records one request's latency.
func (st *endpointStats) observe(d time.Duration) {
	st.mu.Lock()
	if st.lat.N() >= maxLatSamples {
		st.lat = metrics.Dist{}
	}
	st.lat.Add(float64(d) / float64(time.Millisecond))
	st.mu.Unlock()
}

// latencySummary snapshots the rolling latency distribution.
func (st *endpointStats) latencySummary() metrics.Summary {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.lat.Summarize()
}

// vars assembles the endpoint's expvar map: counters plus a Func that
// summarizes latency on demand.
func (st *endpointStats) vars() *expvar.Map {
	m := new(expvar.Map).Init()
	m.Set("hits", &st.hits)
	m.Set("misses", &st.misses)
	m.Set("dedups", &st.dedups)
	m.Set("rejected", &st.rejected)
	m.Set("errors", &st.errors)
	m.Set("latency_ms", expvar.Func(func() any {
		s := st.latencySummary()
		if s.N == 0 {
			// NaN percentiles don't marshal; an idle endpoint reports zeros.
			return map[string]any{"p50": 0.0, "p90": 0.0, "p99": 0.0, "n": 0}
		}
		return map[string]any{"p50": s.Median, "p90": s.P90, "p99": s.P99, "n": s.N}
	}))
	return m
}

// EndpointStats is a point-in-time snapshot of one endpoint's counters,
// exposed for tests and diagnostics.
type EndpointStats struct {
	Hits, Misses, Dedups, Rejected, Errors int64
	Latency                                metrics.Summary
}

func (st *endpointStats) snapshot() EndpointStats {
	return EndpointStats{
		Hits:     st.hits.Value(),
		Misses:   st.misses.Value(),
		Dedups:   st.dedups.Value(),
		Rejected: st.rejected.Value(),
		Errors:   st.errors.Value(),
		Latency:  st.latencySummary(),
	}
}
