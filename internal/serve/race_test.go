package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dgs/internal/tle"
)

// stormQueries is the mixed workload: full and filtered pass scans, plans
// at two granularities and two anchors, and point link budgets. Every
// query is deterministic, so its cold body is the only correct body.
var stormQueries = []string{
	"/v1/passes?hours=1",
	"/v1/passes?hours=2",
	"/v1/passes?hours=3",
	"/v1/passes?sat=3&hours=2",
	"/v1/passes?station=5&hours=2",
	"/v1/passes?sat=1&station=2&hours=4",
	"/v1/plan?hours=1",
	"/v1/plan?hours=1&slot=2m",
	"/v1/plan?from=2020-06-01T01:00:00Z&hours=1",
	"/v1/linkbudget?sat=0&station=0",
	"/v1/linkbudget?sat=2&station=3&lead=30m",
	"/v1/linkbudget?sat=7&station=1&t=2020-06-01T02:00:00Z",
}

// coldBodies computes the canonical response for each query serially on a
// cache-disabled server — the ground truth every concurrent 200 must match
// byte for byte.
func coldBodies(t *testing.T, snap *Snapshot, queries []string) map[string]string {
	t.Helper()
	ref := New(snap, Config{MaxInFlight: 4, CacheEntries: -1})
	h := ref.Handler()
	want := make(map[string]string, len(queries))
	for _, q := range queries {
		rec := get(t, h, q+"&nocache=1")
		if rec.Code != http.StatusOK {
			t.Fatalf("reference %s: status %d body %s", q, rec.Code, rec.Body.String())
		}
		want[q] = rec.Body.String()
	}
	return want
}

// hookCtl lets the test hold chosen computations open mid-flight: a
// request whose canonical key is registered blocks inside the flight
// leader until its release channel closes, provably occupying an
// admission slot. Unregistered keys pass through untouched.
type hookCtl struct {
	mu      sync.Mutex
	blocks  map[string]chan struct{}
	entered chan string
}

func newHookCtl() *hookCtl {
	return &hookCtl{blocks: make(map[string]chan struct{}), entered: make(chan string, 16)}
}

func (h *hookCtl) hook(key string) {
	h.mu.Lock()
	ch := h.blocks[key]
	h.mu.Unlock()
	if ch != nil {
		h.entered <- key
		<-ch
	}
}

func (h *hookCtl) block(key string) chan struct{} {
	ch := make(chan struct{})
	h.mu.Lock()
	h.blocks[key] = ch
	h.mu.Unlock()
	return ch
}

// TestServeConcurrentMixedWorkload is the acceptance concurrency test: 40
// concurrent clients issue a mixed pass/plan/link-budget workload against
// a live server — hitting the cache, missing it, deduplicating in flight,
// 429ing against a provably full shrunk admission limit, and racing a
// graceful shutdown — and every 200 body must be byte-identical to the
// cold, uncached computation for the same query. The overload, dedup, and
// shutdown phases pin admission slots with hook-held sentinel queries
// rather than relying on timing, so the assertions are deterministic.
func TestServeConcurrentMixedWorkload(t *testing.T) {
	snap := testSnapshot(t)
	epoch := snap.Config().Epoch
	passesKey := func(sat, gs int, from time.Time, hours int) string {
		return fmt.Sprintf("e1|passes|%d|%d|%d|%d", sat, gs, from.UnixNano(), from.Add(time.Duration(hours)*time.Hour).UnixNano())
	}
	planKey := func(from time.Time, hours int, slot time.Duration) string {
		return fmt.Sprintf("e1|plan|%d|%d|%d", from.UnixNano(), time.Duration(hours)*time.Hour, slot)
	}
	// Sentinel queries, disjoint from stormQueries so holding them never
	// blocks storm traffic.
	const hold1Q = "/v1/passes?sat=15&hours=1"
	const hold2Q = "/v1/passes?sat=14&hours=1"
	const dedupQ = "/v1/plan?hours=2"
	const shutQ = "/v1/passes?station=11&hours=1"
	sentinels := map[string]string{
		hold1Q: passesKey(15, -1, epoch, 1),
		hold2Q: passesKey(14, -1, epoch, 1),
		dedupQ: planKey(epoch, 2, time.Minute),
		shutQ:  passesKey(-1, 11, epoch, 1),
	}
	all := append(append([]string{}, stormQueries...), hold1Q, hold2Q, dedupQ, shutQ)
	want := coldBodies(t, snap, all)

	ctl := newHookCtl()
	s := New(snap, Config{MaxInFlight: 2, CacheEntries: 64})
	s.computeHook = ctl.hook
	srv := &http.Server{Handler: s.Handler()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	addr := ln.Addr().String()
	base := "http://" + addr
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}

	fetch := func(url string) (int, string, error) {
		resp, err := client.Get(url)
		if err != nil {
			return 0, "", err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return 0, "", err
		}
		if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
			return 0, "", fmt.Errorf("429 without Retry-After")
		}
		return resp.StatusCode, string(body), nil
	}

	// --- Phase 1: open storm. 40 clients, mixed queries, 1-in-5
	// cache-busted. Every 200 must match the cold body; 429s are legal
	// under the shrunk limit.
	const clients = 40
	const perClient = 25
	var ok200, rejected atomic.Int64
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)*2654435761 + 1))
			for i := 0; i < perClient; i++ {
				q := stormQueries[rng.Intn(len(stormQueries))]
				url := base + q
				if rng.Intn(5) == 0 {
					url += "&nocache=1"
				}
				code, body, err := fetch(url)
				if err != nil {
					errs <- fmt.Errorf("client %d: %v", c, err)
					return
				}
				switch code {
				case http.StatusOK:
					if body != want[q] {
						errs <- fmt.Errorf("client %d: %s: 200 body differs from cold computation", c, q)
						return
					}
					ok200.Add(1)
				case http.StatusTooManyRequests:
					rejected.Add(1)
				default:
					errs <- fmt.Errorf("client %d: %s: status %d body %s", c, q, code, body)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := ok200.Load() + rejected.Load(); got != clients*perClient {
		t.Fatalf("accounted for %d responses, want %d", got, clients*perClient)
	}

	// Warm every storm query so phase 2's expectations are exact: cached
	// pass/plan queries must keep serving 200s while admission is full.
	for _, q := range stormQueries {
		if code, body, err := fetch(base + q); err != nil || code != http.StatusOK || body != want[q] {
			t.Fatalf("warming %s: code %d err %v", q, code, err)
		}
	}

	// waitIdle blocks until every admission slot is back: a handler's
	// deferred release can lag the client-visible response by a beat.
	waitIdle := func(phase string) {
		deadline := time.Now().Add(10 * time.Second)
		for s.adm.inUse() != 0 {
			if time.Now().After(deadline) {
				t.Fatalf("%s: admission slots never drained", phase)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitIdle("after storm")

	// --- Phase 2: deterministic overload. Two hook-held sentinel requests
	// pin both admission slots, so every compute-path request — cache-
	// busted or uncacheable — MUST 429, while cached queries keep hitting.
	release1 := ctl.block(sentinels[hold1Q])
	release2 := ctl.block(sentinels[hold2Q])
	holderDone := make(chan error, 2)
	for _, q := range []string{hold1Q, hold2Q} {
		go func(q string) {
			code, body, err := fetch(base + q)
			if err == nil && (code != http.StatusOK || body != want[q]) {
				err = fmt.Errorf("%s: holder got %d", q, code)
			}
			holderDone <- err
		}(q)
	}
	<-ctl.entered
	<-ctl.entered // both slots are now provably held mid-compute

	var phase2wg sync.WaitGroup
	phase2errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		phase2wg.Add(1)
		go func(c int) {
			defer phase2wg.Done()
			rng := rand.New(rand.NewSource(int64(c)*48271 + 11))
			for i := 0; i < 5; i++ {
				q := stormQueries[rng.Intn(len(stormQueries))]
				bust := rng.Intn(2) == 0
				url := base + q
				if bust {
					url += "&nocache=1"
				}
				code, body, err := fetch(url)
				if err != nil {
					phase2errs <- err
					return
				}
				computePath := bust || q[:9] == "/v1/linkb"
				switch {
				case computePath && code != http.StatusTooManyRequests:
					phase2errs <- fmt.Errorf("%s (bust=%v): got %d with admission provably full, want 429", q, bust, code)
					return
				case !computePath && code != http.StatusOK:
					phase2errs <- fmt.Errorf("%s: cached query got %d during overload, want 200", q, code)
					return
				case code == http.StatusOK && body != want[q]:
					phase2errs <- fmt.Errorf("%s: overload-era 200 differs from cold computation", q)
					return
				}
			}
		}(c)
	}
	phase2wg.Wait()
	close(phase2errs)
	for err := range phase2errs {
		t.Fatal(err)
	}
	close(release1)
	close(release2)
	for i := 0; i < 2; i++ {
		if err := <-holderDone; err != nil {
			t.Fatal(err)
		}
	}
	waitIdle("after overload phase")

	// --- Phase 3: deterministic in-flight dedup. A hook-held leader on a
	// fresh plan query, one follower parked on its flight; both must get
	// the same canonical bytes from one computation.
	release3 := ctl.block(sentinels[dedupQ])
	dedupsBefore := s.Stats("plan").Dedups
	dedupDone := make(chan error, 2)
	doDedup := func() {
		code, body, err := fetch(base + dedupQ)
		if err == nil && (code != http.StatusOK || body != want[dedupQ]) {
			err = fmt.Errorf("dedup request got %d", code)
		}
		dedupDone <- err
	}
	go doDedup()
	<-ctl.entered // leader mid-compute
	go doDedup()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n, _ := s.fl.waitersFor(sentinels[dedupQ]); n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("follower never joined the in-flight call")
		}
		time.Sleep(time.Millisecond)
	}
	close(release3)
	for i := 0; i < 2; i++ {
		if err := <-dedupDone; err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Stats("plan").Dedups; got != dedupsBefore+1 {
		t.Fatalf("dedups = %d, want %d", got, dedupsBefore+1)
	}
	waitIdle("after dedup phase")

	// --- Phase 4: graceful shutdown racing a held request. The request is
	// provably mid-compute when the listener closes; it must still drain
	// to a byte-correct 200 and Shutdown must return clean.
	release4 := ctl.block(sentinels[shutQ])
	shutResult := make(chan error, 1)
	go func() {
		code, body, err := fetch(base + shutQ)
		if err == nil && (code != http.StatusOK || body != want[shutQ]) {
			err = fmt.Errorf("drained request got %d", code)
		}
		shutResult <- err
	}()
	<-ctl.entered
	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- srv.Shutdown(context.Background()) }()
	deadline = time.Now().Add(10 * time.Second)
	for {
		conn, err := net.DialTimeout("tcp", addr, 50*time.Millisecond)
		if err != nil {
			break
		}
		conn.Close()
		if time.Now().After(deadline) {
			t.Fatal("listener never closed after Shutdown")
		}
		time.Sleep(time.Millisecond)
	}
	close(release4)
	if err := <-shutResult; err != nil {
		t.Fatalf("in-flight request during graceful shutdown: %v", err)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown returned %v after drain", err)
	}

	var hits, misses, dedups, stRejected, errCount int64
	for _, ep := range []string{"passes", "plan", "linkbudget"} {
		st := s.Stats(ep)
		hits += st.Hits
		misses += st.Misses
		dedups += st.Dedups
		stRejected += st.Rejected
		errCount += st.Errors
	}
	t.Logf("storm: %d ok, %d storm-phase rejects; counters: %d hits %d misses %d dedups %d rejected",
		ok200.Load(), rejected.Load(), hits, misses, dedups, stRejected)
	if errCount != 0 {
		t.Fatalf("server recorded %d internal errors", errCount)
	}
	if hits == 0 {
		t.Fatal("workload never hit the cache")
	}
	if misses == 0 {
		t.Fatal("workload never reached the compute path")
	}
	if stRejected == 0 {
		t.Fatal("overload phase never produced a 429")
	}
	if dedups == 0 {
		t.Fatal("workload never deduplicated an in-flight request")
	}
}

// TestServeEpochSwapStorm races the versioned-world machinery end to
// end: a background writer publishes ten epoch swaps through POST
// /v2/updates while concurrent readers hammer the query surface and SSE
// subscribers consume the delta stream. Invariants checked under -race:
// every reader observes a non-decreasing epoch sequence, every /v2/plan
// body's epoch matches its X-World-Epoch header, each subscriber sees
// every delta exactly once and in order, and the store drains cleanly.
func TestServeEpochSwapStorm(t *testing.T) {
	snap := testSnapshot(t)
	s := New(snap, Config{MaxInFlight: 8, CacheEntries: 128})
	srv := &http.Server{Handler: s.Handler()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}

	const swaps = 10
	const readers = 16
	const streams = 5

	// Subscribers connect first, so every one of them provably receives
	// every swap's delta.
	type streamResult struct {
		deltas int
		err    error
	}
	streamDone := make(chan streamResult, streams)
	streamReady := make(chan struct{}, streams)
	for i := 0; i < streams; i++ {
		go func() {
			resp, err := client.Get(base + "/v2/plan/stream")
			if err != nil {
				streamReady <- struct{}{}
				streamDone <- streamResult{err: err}
				return
			}
			defer resp.Body.Close()
			streamReady <- struct{}{}
			r := bufio.NewReader(resp.Body)
			next := uint64(1) // expect the initial plan event at epoch 1
			deltas := 0
			for {
				ev, err := readSSEEvent(r)
				if err != nil {
					streamDone <- streamResult{deltas: deltas} // stream drained
					return
				}
				id, perr := strconv.ParseUint(ev.id, 10, 64)
				if perr != nil || id != next {
					streamDone <- streamResult{err: fmt.Errorf("event id %q, want %d", ev.id, next)}
					return
				}
				if next == 1 && ev.name != "plan" || next > 1 && ev.name != "delta" {
					streamDone <- streamResult{err: fmt.Errorf("event %q at epoch %d", ev.name, id)}
					return
				}
				if next > 1 {
					deltas++
				}
				next++
			}
		}()
	}
	for i := 0; i < streams; i++ {
		<-streamReady
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.store.Subscribers() < streams {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d subscribers registered", s.store.Subscribers(), streams)
		}
		time.Sleep(time.Millisecond)
	}

	var writerDone atomic.Bool
	readerErrs := make(chan error, readers)
	var wg sync.WaitGroup
	for c := 0; c < readers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)*6364136223846793005 + 1442695040888963407))
			lastEpoch := uint64(0)
			for i := 0; ; i++ {
				last := writerDone.Load()
				var url string
				switch rng.Intn(3) {
				case 0:
					url = base + "/v2/plan"
				case 1:
					url = base + fmt.Sprintf("/v1/passes?sat=%d&hours=1", rng.Intn(16))
				default:
					url = base + "/v2/passes?sat=9&hours=1"
				}
				resp, err := client.Get(url)
				if err != nil {
					readerErrs <- fmt.Errorf("reader %d: %v", c, err)
					return
				}
				body, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr != nil {
					readerErrs <- fmt.Errorf("reader %d: %v", c, rerr)
					return
				}
				switch resp.StatusCode {
				case http.StatusOK:
				case http.StatusTooManyRequests:
					continue // legal under load; epoch headers absent
				default:
					readerErrs <- fmt.Errorf("reader %d: %s: status %d body %s", c, url, resp.StatusCode, body)
					return
				}
				he, perr := strconv.ParseUint(resp.Header.Get("X-World-Epoch"), 10, 64)
				if perr != nil {
					readerErrs <- fmt.Errorf("reader %d: %s: bad X-World-Epoch %q", c, url, resp.Header.Get("X-World-Epoch"))
					return
				}
				// The world only moves forward: no reader may ever observe
				// an epoch older than one it has already seen.
				if he < lastEpoch {
					readerErrs <- fmt.Errorf("reader %d: epoch went backwards: %d after %d", c, he, lastEpoch)
					return
				}
				lastEpoch = he
				if strings.HasSuffix(url, "/v2/plan") {
					var p planV2Response
					if err := json.Unmarshal(body, &p); err != nil {
						readerErrs <- fmt.Errorf("reader %d: plan decode: %v", c, err)
						return
					}
					if p.Epoch != he {
						readerErrs <- fmt.Errorf("reader %d: body epoch %d != header epoch %d (torn world)", c, p.Epoch, he)
						return
					}
				}
				if last {
					return
				}
			}
		}(c)
	}

	// The writer alternates satellite 9 between two element sets; every
	// accepted POST is one epoch swap. 429s (admission full) retry.
	alt := [2]tle.TLE{altTLE(t, snap, 9, 21), altTLE(t, snap, 9, 22)}
	for i := 0; i < swaps; i++ {
		l1, l2 := tleLines(t, alt[i%2])
		body, _ := json.Marshal(Update{TLEs: []TLEUpdate{{Line1: l1, Line2: l2}}})
		for {
			resp, err := client.Post(base+"/v2/updates", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			rb, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusTooManyRequests {
				time.Sleep(time.Millisecond)
				continue
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("swap %d: status %d body %s", i, resp.StatusCode, rb)
			}
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	writerDone.Store(true)

	wg.Wait()
	close(readerErrs)
	for err := range readerErrs {
		t.Fatal(err)
	}
	if e := s.store.Epoch(); e != swaps+1 {
		t.Fatalf("final epoch = %d, want %d", e, swaps+1)
	}

	// Drain: closing the store ends every stream; each subscriber must
	// have seen all deltas, in order, exactly once.
	s.store.Close()
	for i := 0; i < streams; i++ {
		select {
		case r := <-streamDone:
			if r.err != nil {
				t.Fatal(r.err)
			}
			if r.deltas != swaps {
				t.Fatalf("subscriber saw %d deltas, want %d", r.deltas, swaps)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("stream did not drain after store close")
		}
	}
	// A handler's deferred Release can lag the client-visible response by
	// a beat; retired worlds must drain to zero readers shortly after.
	deadline = time.Now().Add(10 * time.Second)
	for s.store.RetiredWorlds() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d retired worlds still referenced after drain", s.store.RetiredWorlds())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServeGracefulShutdownDrains proves the shutdown race at width:
// eight requests provably held mid-compute when Shutdown is called
// (listener already closed) still complete with byte-correct 200s, and
// Shutdown returns cleanly once they drain.
func TestServeGracefulShutdownDrains(t *testing.T) {
	snap := testSnapshot(t)

	// Eight distinct single-satellite queries, so each request leads its
	// own flight and all eight are provably mid-compute at once.
	queries := make([]string, 8)
	for i := range queries {
		queries[i] = fmt.Sprintf("/v1/passes?sat=%d&hours=1", i)
	}
	want := coldBodies(t, snap, queries)

	s := New(snap, Config{MaxInFlight: 16, CacheEntries: -1})
	entered := make(chan string, len(queries))
	release := make(chan struct{})
	s.computeHook = func(key string) {
		entered <- key
		<-release
	}

	srv := &http.Server{Handler: s.Handler()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	addr := ln.Addr().String()

	type result struct {
		q    string
		code int
		body string
		err  error
	}
	results := make(chan result, len(queries))
	for _, q := range queries {
		go func(q string) {
			resp, err := http.Get("http://" + addr + q)
			if err != nil {
				results <- result{q: q, err: err}
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			results <- result{q: q, code: resp.StatusCode, body: string(body)}
		}(q)
	}

	// Every request is mid-compute: the hook has admitted all eight.
	for i := 0; i < len(queries); i++ {
		<-entered
	}

	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- srv.Shutdown(context.Background()) }()

	// Shutdown closes the listener first; wait until new connections are
	// refused so the in-flight requests are provably racing the drain.
	deadline := time.Now().Add(10 * time.Second)
	for {
		conn, err := net.DialTimeout("tcp", addr, 50*time.Millisecond)
		if err != nil {
			break
		}
		conn.Close()
		if time.Now().After(deadline) {
			t.Fatal("listener never closed after Shutdown")
		}
		time.Sleep(time.Millisecond)
	}

	close(release)
	for i := 0; i < len(queries); i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("%s: in-flight request failed during graceful shutdown: %v", r.q, r.err)
		}
		if r.code != http.StatusOK {
			t.Fatalf("%s: in-flight request got %d during graceful shutdown", r.q, r.code)
		}
		if r.body != want[r.q] {
			t.Fatalf("%s: drained response differs from cold computation", r.q)
		}
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown returned %v after drain", err)
	}
}
