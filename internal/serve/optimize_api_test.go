package serve

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// optimizeCandidates picks n receive-only stations from the test world,
// so disabling them can never strand the hybrid control plane without a
// TX-capable base station.
func optimizeCandidates(t *testing.T, snap *Snapshot, n int) []int {
	t.Helper()
	var cands []int
	for i, gs := range snap.net {
		if !gs.TxCapable {
			cands = append(cands, i)
			if len(cands) == n {
				return cands
			}
		}
	}
	t.Fatalf("test world has only %d receive-only stations, need %d", len(cands), n)
	return nil
}

func postOptimize(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v2/optimize", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// waitForJob polls GET /v2/optimize/{id} until the job reaches a
// terminal state.
func waitForJob(t *testing.T, h http.Handler, id string) optimizeStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		rec := get(t, h, "/v2/optimize/"+id)
		if rec.Code != http.StatusOK {
			t.Fatalf("job status = %d body %s", rec.Code, rec.Body.String())
		}
		var st optimizeStatus
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
			t.Fatalf("status decode: %v", err)
		}
		if st.Status == jobDone || st.Status == jobFailed {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after 2m", id, st.Status)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestOptimizeJobRoundTrip(t *testing.T) {
	snap := testSnapshot(t)
	s := New(snap, Config{})
	h := s.Handler()
	cands := optimizeCandidates(t, snap, 3)

	body, _ := json.Marshal(map[string]any{
		"k": 2, "candidates": cands,
		"horizon_hours": 1.0, "warmup_hours": 0.5,
	})
	rec := postOptimize(t, h, string(body))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("POST status = %d body %s", rec.Code, rec.Body.String())
	}
	var acc optimizeAccepted
	if err := json.Unmarshal(rec.Body.Bytes(), &acc); err != nil {
		t.Fatalf("accepted decode: %v", err)
	}
	if acc.Job == "" || acc.Status != jobQueued || acc.Epoch != 1 {
		t.Fatalf("accepted = %+v", acc)
	}
	if loc := rec.Header().Get("Location"); loc != "/v2/optimize/"+acc.Job {
		t.Fatalf("Location = %q", loc)
	}

	st := waitForJob(t, h, acc.Job)
	if st.Status != jobDone {
		t.Fatalf("job failed: %s", st.Error)
	}
	if st.Strategy != "greedy" || st.Report == nil || len(st.Reports) != 1 {
		t.Fatalf("status = %+v", st)
	}
	if len(st.Report.Selected) != 2 || len(st.Report.Curve) != 2 {
		t.Fatalf("report = %+v", st.Report)
	}
	for _, c := range st.Report.Selected {
		found := false
		for _, want := range cands {
			if c == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("selected non-candidate station %d", c)
		}
	}
	if st.Progress == nil || st.Progress.Done != 2 {
		t.Fatalf("final progress = %+v", st.Progress)
	}
}

func TestOptimizeJobDeterministicAcrossServers(t *testing.T) {
	snap := testSnapshot(t)
	cands := optimizeCandidates(t, snap, 3)
	body, _ := json.Marshal(map[string]any{
		"k": 1, "candidates": cands,
		"horizon_hours": 1.0, "warmup_hours": 0.5,
	})
	run := func() []byte {
		s := New(snap, Config{})
		h := s.Handler()
		rec := postOptimize(t, h, string(body))
		if rec.Code != http.StatusAccepted {
			t.Fatalf("POST status = %d body %s", rec.Code, rec.Body.String())
		}
		var acc optimizeAccepted
		if err := json.Unmarshal(rec.Body.Bytes(), &acc); err != nil {
			t.Fatal(err)
		}
		st := waitForJob(t, h, acc.Job)
		if st.Status != jobDone {
			t.Fatalf("job failed: %s", st.Error)
		}
		raw, err := json.Marshal(st.Report)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("optimize reports differ across servers:\n%s\nvs\n%s", a, b)
	}
}

func TestOptimizeValidation(t *testing.T) {
	snap := testSnapshot(t)
	s := New(snap, Config{})
	h := s.Handler()
	cands := optimizeCandidates(t, snap, 2)
	candJSON, _ := json.Marshal(cands)

	cases := []struct {
		name, body, wantMsg string
	}{
		{"missing k", `{"candidates":` + string(candJSON) + `}`, "k must be"},
		{"no candidates", `{"k":1}`, "candidates"},
		{"out of range", `{"k":1,"candidates":[99]}`, "out of range"},
		{"bad objective", `{"k":1,"candidates":` + string(candJSON) + `,"objective":"bogus"}`, "unknown objective"},
		{"bad strategy", `{"k":1,"candidates":` + string(candJSON) + `,"strategy":"bogus"}`, "unknown strategy"},
		{"bad horizon", `{"k":1,"candidates":` + string(candJSON) + `,"horizon_hours":0}`, "horizon_hours"},
		{"bad warmup", `{"k":1,"candidates":` + string(candJSON) + `,"warmup_hours":-1}`, "warmup_hours"},
		{"unknown field", `{"k":1,"candidates":` + string(candJSON) + `,"bogus":1}`, "bogus"},
	}
	for _, tc := range cases {
		rec := postOptimize(t, h, tc.body)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("%s: status = %d body %s", tc.name, rec.Code, rec.Body.String())
		}
		if !strings.Contains(rec.Body.String(), tc.wantMsg) {
			t.Fatalf("%s: body %q does not mention %q", tc.name, rec.Body.String(), tc.wantMsg)
		}
	}

	if rec := get(t, h, "/v2/optimize/opt-999"); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown job status = %d", rec.Code)
	}
	if rec := get(t, h, "/v2/optimize/opt-999/stream"); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown job stream status = %d", rec.Code)
	}
	// Wrong method → 405 with Allow.
	rec := get(t, h, "/v2/optimize")
	if rec.Code != http.StatusMethodNotAllowed || rec.Header().Get("Allow") != http.MethodPost {
		t.Fatalf("GET /v2/optimize = %d Allow=%q", rec.Code, rec.Header().Get("Allow"))
	}
}

// TestOptimizeStreamDeliversProgress holds the job-execution slot while
// the SSE client connects, so every progress event of the run is
// observed live on the stream: status first, then progress events, the
// stage report, and the final done event before the stream closes.
func TestOptimizeStreamDeliversProgress(t *testing.T) {
	snap := testSnapshot(t)
	s := New(snap, Config{})
	cands := optimizeCandidates(t, snap, 2)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Stall the execution queue so the job cannot start yet.
	s.jobs.run <- struct{}{}

	body, _ := json.Marshal(map[string]any{
		"k": 1, "candidates": cands,
		"horizon_hours": 1.0, "warmup_hours": 0.5,
	})
	resp, err := http.Post(srv.URL+"/v2/optimize", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	var acc optimizeAccepted
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	stream, err := http.Get(srv.URL + "/v2/optimize/" + acc.Job + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type = %q", ct)
	}

	// Release the queue: the job runs with the subscriber attached.
	<-s.jobs.run

	events := map[string]int{}
	sc := bufio.NewScanner(stream.Body)
	for sc.Scan() {
		line := sc.Text()
		if ev, ok := strings.CutPrefix(line, "event: "); ok {
			events[ev]++
		}
	}
	if events["status"] != 1 {
		t.Fatalf("events = %v, want exactly one status", events)
	}
	if events["progress"] == 0 {
		t.Fatalf("events = %v, want live progress events", events)
	}
	if events["done"] != 1 || events["report"] != 1 {
		t.Fatalf("events = %v, want one report and one done", events)
	}

	// A terminal job's stream is just the status snapshot (which carries
	// the final report) and then EOF.
	st := waitForJob(t, s.Handler(), acc.Job)
	if st.Status != jobDone {
		t.Fatalf("job failed: %s", st.Error)
	}
	stream2, err := http.Get(srv.URL + "/v2/optimize/" + acc.Job + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer stream2.Body.Close()
	var sawStatus bool
	sc2 := bufio.NewScanner(stream2.Body)
	for sc2.Scan() {
		line := sc2.Text()
		if strings.HasPrefix(line, "event: status") {
			sawStatus = true
		}
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			var final optimizeStatus
			if err := json.Unmarshal([]byte(data), &final); err != nil {
				t.Fatalf("status event decode: %v", err)
			}
			if final.Status != jobDone || final.Report == nil {
				t.Fatalf("terminal stream status = %+v", final)
			}
		}
	}
	if !sawStatus {
		t.Fatal("terminal stream had no status event")
	}
}
