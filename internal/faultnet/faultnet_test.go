package faultnet

import (
	"bytes"
	"io"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"
)

// pipePair returns a faulted writer end and the raw reader end.
func pipePair(f Faults) (w *Conn, r net.Conn) {
	a, b := net.Pipe()
	return Wrap(a, f), b
}

func TestCutWriteDeliversPrefixThenResets(t *testing.T) {
	w, r := pipePair(Faults{CutWriteAt: 10})
	got := make([]byte, 64)
	var n int
	var rerr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		n, rerr = io.ReadFull(r, got)
	}()
	payload := bytes.Repeat([]byte{0xAB}, 40)
	wn, werr := w.Write(payload)
	if werr == nil {
		t.Fatal("write across the cut succeeded")
	}
	if wn != 10 {
		t.Fatalf("wrote %d bytes, want the 10-byte prefix", wn)
	}
	<-done
	if n != 10 || rerr == nil {
		t.Fatalf("peer read %d bytes, err %v; want 10 + reset", n, rerr)
	}
	// The connection stays dead.
	if _, err := w.Write([]byte{1}); err == nil {
		t.Fatal("write after cut succeeded")
	}
}

func TestCutRead(t *testing.T) {
	a, b := net.Pipe()
	fr := Wrap(b, Faults{CutReadAt: 5})
	go func() {
		a.Write(bytes.Repeat([]byte{1}, 20))
	}()
	buf := make([]byte, 20)
	n, err := fr.Read(buf)
	if n != 5 || err != nil {
		t.Fatalf("first read = %d, %v; want 5, nil", n, err)
	}
	if _, err := fr.Read(buf); err == nil {
		t.Fatal("read past the cut succeeded")
	}
}

func TestFlipCorruptsExactOffsets(t *testing.T) {
	var st Stats
	w, r := pipePair(Faults{FlipWriteAt: []int64{3, 7}, Stats: &st})
	src := []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	orig := append([]byte(nil), src...)
	got := make([]byte, len(src))
	done := make(chan struct{})
	go func() {
		defer close(done)
		io.ReadFull(r, got)
	}()
	if _, err := w.Write(src); err != nil {
		t.Fatal(err)
	}
	<-done
	want := append([]byte(nil), orig...)
	want[3] ^= corruptXOR
	want[7] ^= corruptXOR
	if !bytes.Equal(got, want) {
		t.Fatalf("got % x want % x", got, want)
	}
	if !bytes.Equal(src, orig) {
		t.Fatal("caller's buffer was mutated")
	}
	if st.Flips.Load() != 2 {
		t.Fatalf("flips = %d, want 2", st.Flips.Load())
	}
}

func TestGateKillsDuringWindow(t *testing.T) {
	g := &Gate{start: time.Now().Add(-time.Second), windows: []Window{{After: 0, Dur: time.Hour}}}
	w, _ := pipePair(Faults{Gate: g})
	if _, err := w.Write([]byte{1}); err == nil {
		t.Fatal("write during partition succeeded")
	}
	if g.Blocked(g.start.Add(2 * time.Hour)) {
		t.Fatal("partition outlived its window")
	}
	if (*Gate)(nil).Blocked(time.Now()) {
		t.Fatal("nil gate blocked")
	}
}

func TestSchedulePlansAreDeterministic(t *testing.T) {
	sched := Schedule{Seed: 42, CutMeanBytes: 4096, FlipMeanBytes: 1024}
	a := &Listener{sched: sched}
	b := &Listener{sched: sched}
	for idx := 0; idx < 5; idx++ {
		pa, pb := a.planFor(idx), b.planFor(idx)
		pa.Gate, pa.Stats, pb.Gate, pb.Stats = nil, nil, nil, nil
		if !reflect.DeepEqual(pa, pb) {
			t.Fatalf("conn %d: plans differ:\n%+v\n%+v", idx, pa, pb)
		}
		if pa.CutReadAt <= 0 || len(pa.FlipReadAt)+len(pa.FlipWriteAt) == 0 {
			t.Fatalf("conn %d: empty plan %+v", idx, pa)
		}
	}
	// Cut offsets grow with the connection index (progress guarantee).
	if a.planFor(6).CutReadAt <= a.planFor(0).CutReadAt {
		t.Fatal("cut offsets do not grow across reconnects")
	}
}

func TestListenerRefusesAndFaults(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := NewListener(inner, Schedule{Seed: 7, RefuseFirst: 2, CutMeanBytes: 64})
	defer ln.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// The server side: echo until the fault plan kills the conn.
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		io.Copy(c, c)
	}()

	// First two dials are refused (connection closed immediately); the
	// accept loop must hide them from the server.
	for i := 0; i < 3; i++ {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		c.SetDeadline(time.Now().Add(5 * time.Second))
		// Push until the echo dies; refused conns die on the first read.
		alive := 0
		buf := make([]byte, 32)
		for k := 0; k < 64; k++ {
			if _, err := c.Write(buf); err != nil {
				break
			}
			if _, err := c.Read(buf); err != nil {
				break
			}
			alive++
		}
		if i < 2 && alive > 0 {
			t.Fatalf("refused dial %d echoed %d rounds", i, alive)
		}
		if i == 2 && alive == 0 {
			t.Fatal("accepted conn never echoed")
		}
	}
	wg.Wait()
	if ln.Stats.Refused.Load() != 2 {
		t.Fatalf("refused = %d, want 2", ln.Stats.Refused.Load())
	}
	if ln.Stats.Cuts.Load() == 0 {
		t.Fatal("scheduled cut never fired")
	}
}

func TestDelayInjection(t *testing.T) {
	var st Stats
	w, r := pipePair(Faults{Delay: time.Millisecond, DelayEveryBytes: 8, Stats: &st})
	go io.Copy(io.Discard, r)
	start := time.Now()
	for i := 0; i < 4; i++ {
		if _, err := w.Write(make([]byte, 8)); err != nil {
			t.Fatal(err)
		}
	}
	if st.Delays.Load() == 0 {
		t.Fatal("no delays injected")
	}
	if time.Since(start) < 2*time.Millisecond {
		t.Fatal("delays did not slow the writer")
	}
}
