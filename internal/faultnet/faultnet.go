// Package faultnet wraps net.Conn/net.Listener with seeded, deterministic
// fault injection: added latency, byte corruption, mid-stream connection
// cuts (resets), refused connections, and timed network partitions. It is
// the chaos substrate for the station↔backend session layer: a Schedule is
// derived entirely from a seed, so a failing run reproduces by re-running
// with the same seed.
//
// Two layers are exposed:
//
//   - Faults + Wrap: a fully explicit per-connection fault plan (exact
//     byte offsets to corrupt or cut), for targeted tests of decoder and
//     session error paths.
//   - Schedule + NewListener: a seeded generator that draws a fresh fault
//     plan for every accepted connection, for chaos tests that hammer a
//     whole server.
//
// The package is stdlib-only and injects faults synchronously inside
// Read/Write, so no background goroutines exist and -race runs stay
// meaningful for the code under test.
package faultnet

import (
	"errors"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is returned (wrapped in net.OpError-free form) by reads and
// writes that the fault plan cut or partitioned away.
var ErrInjected = errors.New("faultnet: injected connection failure")

// corruptXOR is the pattern XORed into corrupted bytes. Nonzero in every
// nibble so a flip is never a no-op.
const corruptXOR = 0x55

// Stats counts the faults a listener or connection actually injected.
// All fields are read/written atomically; tests use them to prove the
// schedule really fired.
type Stats struct {
	Cuts      atomic.Int64 // connections reset mid-stream
	Flips     atomic.Int64 // bytes corrupted
	Delays    atomic.Int64 // injected latency events
	Refused   atomic.Int64 // connections refused at accept
	Partition atomic.Int64 // reads/writes killed by a partition window
}

// Faults is one connection's deterministic fault plan. Offsets are
// absolute positions in the byte stream of that direction (0 = first byte
// after Wrap). The zero value injects nothing.
type Faults struct {
	// CutReadAt / CutWriteAt close the connection when the cumulative
	// byte count of that direction reaches the offset (<= 0: never). A cut
	// mid-buffer delivers the prefix first, so peers observe a partial
	// frame followed by a reset — the "mid-frame reset" case.
	CutReadAt  int64
	CutWriteAt int64
	// FlipReadAt / FlipWriteAt corrupt (XOR 0x55) the bytes at the given
	// stream offsets.
	FlipReadAt  []int64
	FlipWriteAt []int64
	// Delay sleeps before I/O each time another DelayEveryBytes bytes have
	// moved in that direction (0: no delay).
	Delay           time.Duration
	DelayEveryBytes int64

	// Gate, when non-nil, subjects the connection to timed partitions.
	Gate *Gate
	// Stats, when non-nil, receives fault counters.
	Stats *Stats
}

// Gate is a shared partition clock: while inside any window, every
// associated connection fails its reads and writes and new connections are
// refused. Windows are relative to the gate's start time.
type Gate struct {
	start   time.Time
	windows []Window
}

// Window is one partition interval, relative to the Gate start.
type Window struct {
	After time.Duration // partition begins this long after start
	Dur   time.Duration // and lasts this long
}

// NewGate starts a partition clock now.
func NewGate(windows []Window) *Gate {
	return &Gate{start: time.Now(), windows: windows}
}

// Blocked reports whether the partition is active at time t.
func (g *Gate) Blocked(t time.Time) bool {
	if g == nil {
		return false
	}
	elapsed := t.Sub(g.start)
	for _, w := range g.windows {
		if elapsed >= w.After && elapsed < w.After+w.Dur {
			return true
		}
	}
	return false
}

// Conn is a net.Conn with an attached fault plan.
type Conn struct {
	net.Conn
	f Faults

	mu       sync.Mutex
	readOff  int64
	writeOff int64
	cut      bool
}

// Wrap attaches a fault plan to a connection. The plan's flip offsets are
// sorted internally; the caller's slices are not modified.
func Wrap(c net.Conn, f Faults) *Conn {
	f.FlipReadAt = sortedCopy(f.FlipReadAt)
	f.FlipWriteAt = sortedCopy(f.FlipWriteAt)
	return &Conn{Conn: c, f: f}
}

func sortedCopy(v []int64) []int64 {
	out := append([]int64(nil), v...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (c *Conn) countDelay(off, n int64) bool {
	if c.f.Delay <= 0 || c.f.DelayEveryBytes <= 0 {
		return false
	}
	return (off+n)/c.f.DelayEveryBytes > off/c.f.DelayEveryBytes
}

// fail closes the underlying connection and records a cut.
func (c *Conn) fail(counter *atomic.Int64) error {
	if !c.cut {
		c.cut = true
		c.Conn.Close()
		if c.f.Stats != nil {
			counter.Add(1)
		}
	}
	return ErrInjected
}

// Read applies the fault plan to inbound bytes.
func (c *Conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	if c.cut {
		c.mu.Unlock()
		return 0, ErrInjected
	}
	if c.f.Gate.Blocked(time.Now()) {
		err := c.fail(&statsOf(c.f.Stats).Partition)
		c.mu.Unlock()
		return 0, err
	}
	off := c.readOff
	// Cap the read so a cut lands exactly at its offset: the prefix is
	// delivered, the next call fails.
	max := len(p)
	if c.f.CutReadAt > 0 {
		if off >= c.f.CutReadAt {
			err := c.fail(&statsOf(c.f.Stats).Cuts)
			c.mu.Unlock()
			return 0, err
		}
		if rem := c.f.CutReadAt - off; int64(max) > rem {
			max = int(rem)
		}
	}
	delay := c.countDelay(off, int64(max))
	c.mu.Unlock()

	if delay {
		if c.f.Stats != nil {
			c.f.Stats.Delays.Add(1)
		}
		time.Sleep(c.f.Delay)
	}
	n, err := c.Conn.Read(p[:max])

	c.mu.Lock()
	for _, at := range c.f.FlipReadAt {
		if at >= off && at < off+int64(n) {
			p[at-off] ^= corruptXOR
			if c.f.Stats != nil {
				c.f.Stats.Flips.Add(1)
			}
		}
	}
	c.readOff += int64(n)
	c.mu.Unlock()
	return n, err
}

// Write applies the fault plan to outbound bytes.
func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	if c.cut {
		c.mu.Unlock()
		return 0, ErrInjected
	}
	if c.f.Gate.Blocked(time.Now()) {
		err := c.fail(&statsOf(c.f.Stats).Partition)
		c.mu.Unlock()
		return 0, err
	}
	off := c.writeOff
	max := len(p)
	cutNow := false
	if c.f.CutWriteAt > 0 {
		if off >= c.f.CutWriteAt {
			err := c.fail(&statsOf(c.f.Stats).Cuts)
			c.mu.Unlock()
			return 0, err
		}
		if rem := c.f.CutWriteAt - off; int64(max) > rem {
			max = int(rem)
			cutNow = true // deliver the prefix, then reset
		}
	}
	// Corrupt a copy so the caller's buffer is untouched.
	buf := p[:max]
	for _, at := range c.f.FlipWriteAt {
		if at >= off && at < off+int64(max) {
			if &buf[0] == &p[0] {
				buf = append([]byte(nil), p[:max]...)
			}
			buf[at-off] ^= corruptXOR
			if c.f.Stats != nil {
				c.f.Stats.Flips.Add(1)
			}
		}
	}
	delay := c.countDelay(off, int64(max))
	c.mu.Unlock()

	if delay {
		if c.f.Stats != nil {
			c.f.Stats.Delays.Add(1)
		}
		time.Sleep(c.f.Delay)
	}
	n, err := c.Conn.Write(buf)

	c.mu.Lock()
	c.writeOff += int64(n)
	if cutNow && err == nil {
		err = c.fail(&statsOf(c.f.Stats).Cuts)
	}
	c.mu.Unlock()
	if err != nil {
		return n, err
	}
	// Report the full caller length only when nothing was held back.
	if n == len(p) {
		return n, nil
	}
	return n, ErrInjected
}

// statsOf avoids nil checks at every counter bump site.
var discard Stats

func statsOf(s *Stats) *Stats {
	if s == nil {
		return &discard
	}
	return s
}

// Schedule generates per-connection fault plans from a seed. The zero
// value injects nothing. Mean values are the centers of uniform draws in
// [mean/2, 3*mean/2), so runs with the same seed are identical and runs
// with different seeds explore different interleavings.
type Schedule struct {
	// Seed drives every draw. Connections are numbered in accept order;
	// connection k's plan depends only on (Seed, k).
	Seed int64
	// CutMeanBytes cuts each connection after roughly this many bytes in
	// each direction (0: never). The target grows by CutGrowth per accepted
	// connection (default 1.5 when Growth is 0) so reconnecting sessions
	// are guaranteed eventual progress.
	CutMeanBytes int64
	CutGrowth    float64
	// FlipMeanBytes corrupts roughly one byte per this many bytes moved
	// (0: never).
	FlipMeanBytes int64
	// Delay + DelayEveryBytes add latency (see Faults).
	Delay           time.Duration
	DelayEveryBytes int64
	// Partitions are timed windows (relative to listener creation) during
	// which live connections are killed and new ones refused.
	Partitions []Window
	// RefuseFirst refuses the first N connection attempts outright,
	// exercising dial-level retry.
	RefuseFirst int
}

// Listener wraps an inner listener with a Schedule.
type Listener struct {
	inner net.Listener
	sched Schedule
	gate  *Gate
	// Stats aggregates faults across every accepted connection.
	Stats Stats

	mu  sync.Mutex
	idx int
}

// NewListener derives the fault gate and per-connection plans from
// sched.Seed. The partition clock starts now.
func NewListener(inner net.Listener, sched Schedule) *Listener {
	return &Listener{inner: inner, sched: sched, gate: NewGate(sched.Partitions)}
}

// Accept wraps the next connection in its scheduled fault plan. Refused
// and partitioned connections are closed immediately and the accept loop
// continues — the caller only ever sees usable (if doomed) connections.
func (l *Listener) Accept() (net.Conn, error) {
	for {
		c, err := l.inner.Accept()
		if err != nil {
			return nil, err
		}
		l.mu.Lock()
		idx := l.idx
		l.idx++
		l.mu.Unlock()
		if idx < l.sched.RefuseFirst || l.gate.Blocked(time.Now()) {
			l.Stats.Refused.Add(1)
			c.Close()
			continue
		}
		return Wrap(c, l.planFor(idx)), nil
	}
}

// planFor draws connection idx's fault plan. Deterministic in (Seed, idx).
func (l *Listener) planFor(idx int) Faults {
	rng := rand.New(rand.NewSource(l.sched.Seed*1_000_003 + int64(idx)))
	f := Faults{
		Delay:           l.sched.Delay,
		DelayEveryBytes: l.sched.DelayEveryBytes,
		Gate:            l.gate,
		Stats:           &l.Stats,
	}
	draw := func(mean int64) int64 {
		return mean/2 + rng.Int63n(mean) // uniform in [mean/2, 3*mean/2)
	}
	if m := l.sched.CutMeanBytes; m > 0 {
		growth := l.sched.CutGrowth
		if growth <= 1 {
			growth = 1.5
		}
		scale := 1.0
		for k := 0; k < idx && scale < 1e6; k++ {
			scale *= growth
		}
		m = int64(float64(m) * scale)
		f.CutReadAt = draw(m)
		f.CutWriteAt = draw(m)
	}
	if m := l.sched.FlipMeanBytes; m > 0 {
		// Lay corruption offsets out to a generous horizon; connections are
		// usually cut or drained long before.
		const maxFlips = 64
		off := int64(0)
		for k := 0; k < maxFlips; k++ {
			off += 1 + draw(m)
			if rng.Intn(2) == 0 {
				f.FlipReadAt = append(f.FlipReadAt, off)
			} else {
				f.FlipWriteAt = append(f.FlipWriteAt, off)
			}
		}
	}
	return f
}

// Close closes the inner listener.
func (l *Listener) Close() error { return l.inner.Close() }

// Addr returns the inner listener's address.
func (l *Listener) Addr() net.Addr { return l.inner.Addr() }
