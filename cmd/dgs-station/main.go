// Command dgs-station runs a ground-station agent against a dgs-backend:
// it connects over TCP, receives schedule broadcasts, simulates chunk
// receptions for its assigned slots, reports them to the backend, and — when
// transmit-capable — periodically fetches the collated ack digest it would
// upload to the satellite on the next pass.
//
// Usage:
//
//	dgs-station -backend 127.0.0.1:7700 -id 3
//	dgs-station -backend 127.0.0.1:7700 -id 0 -tx
package main

import (
	"context"
	"flag"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"sync/atomic"
	"time"

	"dgs/internal/backend"
	"dgs/internal/cliutil"
	"dgs/internal/proto"
)

func main() {
	addr := flag.String("backend", "127.0.0.1:7700", "backend address")
	id := flag.Uint("id", 0, "station id")
	name := flag.String("name", "", "station name (default dgs-<id>)")
	tx := flag.Bool("tx", false, "transmit-capable (fetches ack digests)")
	heartbeat := flag.Duration("heartbeat", 0, "keepalive interval (default 15s)")
	flag.Parse()
	cliutil.NonNegativeDuration("heartbeat", *heartbeat)

	if *name == "" {
		*name = "dgs-" + itoa(uint32(*id))
	}

	var latest atomic.Pointer[proto.Schedule]
	agent := &backend.StationAgent{
		ID:             uint32(*id),
		Name:           *name,
		TxCapable:      *tx,
		HeartbeatEvery: *heartbeat,
		OnSchedule: func(s *proto.Schedule) {
			latest.Store(s)
			log.Printf("%s: received schedule v%d (%d slots)", *name, s.Version, len(s.Slots))
		},
	}
	// The managed session redials with backoff and resumes after any
	// connection failure; ctx bounds the whole session and ends it on
	// interrupt.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := agent.Connect(ctx, *addr); err != nil {
		log.Fatalf("dgs-station: %v", err)
	}
	log.Printf("%s: connected to %s (tx=%v)", *name, *addr, *tx)

	rng := rand.New(rand.NewSource(int64(*id)))
	nextChunk := uint64(1)
	tick := time.NewTicker(5 * time.Second)
	defer tick.Stop()

	for {
		select {
		case <-ctx.Done():
			log.Printf("%s: shutting down", *name)
			agent.Close()
			return
		case <-tick.C:
			sched := latest.Load()
			if sched == nil {
				continue
			}
			// Find this station's assignment in the current slot (if any)
			// and pretend the corresponding chunks arrived.
			idx := int(time.Since(sched.Issued) / sched.SlotDur)
			if idx < 0 || idx >= len(sched.Slots) {
				continue
			}
			for _, a := range sched.Slots[idx].Assignments {
				if a.Station != uint32(*id) {
					continue
				}
				n := 1 + rng.Intn(3)
				report := &proto.ChunkReport{StationID: uint32(*id), Sat: a.Sat}
				for k := 0; k < n; k++ {
					report.Chunks = append(report.Chunks, proto.ChunkInfo{
						ID:       nextChunk,
						Bits:     a.RateBps * 5, // five seconds at the planned rate
						Captured: time.Now().Add(-time.Duration(rng.Intn(3600)) * time.Second).UTC(),
						Received: time.Now().UTC(),
					})
					nextChunk++
				}
				if err := agent.Report(report); err != nil {
					log.Printf("%s: report: %v", *name, err)
					continue
				}
				log.Printf("%s: reported %d chunks from satellite %d", *name, n, a.Sat)
				if *tx {
					d, err := agent.FetchDigest(a.Sat)
					if err != nil {
						log.Printf("%s: digest: %v", *name, err)
						continue
					}
					if len(d.ChunkIDs) > 0 {
						log.Printf("%s: would uplink %d acks to satellite %d", *name, len(d.ChunkIDs), a.Sat)
					}
				}
			}
		}
	}
}

func itoa(v uint32) string {
	if v == 0 {
		return "0"
	}
	var b [10]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
