// Command dgs-api serves the ground-station-as-a-service query layer: an
// HTTP JSON API answering pass-prediction, link-budget, and planning
// queries over a versioned world (internal/serve). The world is loaded
// once at startup and then revised live: POST /v2/updates (and the
// optional -watch-tle file watcher) feed TLE refreshes, weather
// revisions, and station membership changes through the incremental
// planner, each landing as a new world epoch with a delta pushed to
// /v2/plan/stream subscribers.
//
// Usage:
//
//	dgs-api -listen 127.0.0.1:8041
//	curl 'http://127.0.0.1:8041/v1/passes?sat=3&hours=6'
//	curl 'http://127.0.0.1:8041/v2/plan'
//	curl -N 'http://127.0.0.1:8041/v2/plan/stream'
//
// The server logs its bound address on startup (so -listen :0 works for
// scripts), sheds overload with 429 + Retry-After, and drains in-flight
// requests — closing plan streams first — on SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dgs/internal/cliutil"
	"dgs/internal/serve"
	"dgs/internal/tle"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8041", "listen address (use :0 for an ephemeral port)")
	sats := flag.Int("sats", 259, "constellation size")
	stations := flag.Int("stations", 173, "ground-station count")
	seed := cliutil.SeedFlag("population")
	txFraction := flag.Float64("tx-fraction", 0.1, "fraction of transmit-capable stations")
	clearSky := flag.Bool("clear-sky", false, "disable weather attenuation")
	forecastErr := flag.Float64("forecast-err", 0.3, "saturated forecast error fraction")
	genGB := flag.Float64("gen-gb", 100, "per-satellite capture volume assumed for plan queries, GB/day")
	slot := flag.Duration("slot", time.Minute, "query time grid and default plan slot")
	maxSpan := flag.Duration("max-span", 48*time.Hour, "servable horizon past the epoch")
	planHorizon := flag.Duration("plan-horizon", time.Hour, "live-plan horizon maintained across epoch swaps")
	workers := flag.Int("workers", 0, "propagation/planning workers (0 = GOMAXPROCS)")
	cache := flag.Int("cache", 4096, "response cache entries (negative disables)")
	inflight := flag.Int("inflight", 0, "max concurrent compute-path requests (0 = 2x workers)")
	watchTLE := flag.String("watch-tle", "", "TLE file to poll; on modification its elements are applied live by catalog number")
	watchInterval := flag.Duration("watch-interval", 10*time.Second, "poll interval for -watch-tle")
	shardAddrs := flag.String("shards", "", "comma-separated dgs-shard addresses; serve as the merging front tier of a federated fleet instead of loading a world locally")
	shardTimeout := flag.Duration("shard-timeout", 30*time.Second, "per-query timeout against shard backends (front-tier mode)")
	pprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on a dedicated address (e.g. localhost:6060), independent of the API listener")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
	flag.Parse()
	cliutil.Seed("seed", *seed)

	cliutil.PositiveInt("sats", *sats)
	cliutil.PositiveInt("stations", *stations)
	cliutil.Fraction("tx-fraction", *txFraction)
	cliutil.Fraction("forecast-err", *forecastErr)
	cliutil.PositiveFloat("gen-gb", *genGB)
	cliutil.PositiveDuration("slot", *slot)
	cliutil.PositiveDuration("max-span", *maxSpan)
	cliutil.PositiveDuration("plan-horizon", *planHorizon)
	cliutil.NonNegativeInt("workers", *workers)
	cliutil.NonNegativeInt("inflight", *inflight)
	cliutil.PositiveDuration("watch-interval", *watchInterval)
	cliutil.PositiveDuration("drain", *drain)
	cliutil.PositiveDuration("shard-timeout", *shardTimeout)
	if *shardAddrs != "" && *watchTLE != "" {
		cliutil.Failf("-watch-tle requires a local world; a front tier (-shards) forwards updates, so point the watcher at a dgs-shard's fleet update path instead")
	}

	if *pprofAddr != "" {
		addr, err := cliutil.StartPprof(*pprofAddr)
		if err != nil {
			log.Fatalf("dgs-api: pprof listener: %v", err)
		}
		log.Printf("dgs-api: pprof on http://%s/debug/pprof/", addr)
	}

	t0 := time.Now()
	var src serve.WorldSource
	var store *serve.Store
	if *shardAddrs != "" {
		// Front-tier mode: no local world — federate the shard fleet. The
		// fleet's shared configuration (validated across every shard at
		// startup) defines the world grid; the local world flags are unused.
		addrs := cliutil.HostPortList("shards", *shardAddrs)
		fed, err := serve.NewFederator(addrs, serve.FederatorConfig{
			CallTimeout: *shardTimeout,
			Logf:        log.Printf,
		})
		if err != nil {
			log.Fatalf("dgs-api: %v", err)
		}
		src = fed
		view := fed.Current().Snap
		log.Printf("dgs-api: federating %d shards: %d satellites / %d stations in %v (front epoch %d)",
			len(addrs), view.Sats(), view.Stations(), time.Since(t0).Round(time.Millisecond), fed.Epoch())
	} else {
		snap, err := serve.NewSnapshot(serve.SnapshotConfig{
			Satellites:  *sats,
			Stations:    *stations,
			Seed:        *seed,
			TxFraction:  *txFraction,
			ClearSky:    *clearSky,
			ForecastErr: *forecastErr,
			GenGBPerDay: *genGB,
			Slot:        *slot,
			MaxSpan:     *maxSpan,
			Workers:     *workers,
		})
		if err != nil {
			log.Fatalf("dgs-api: %v", err)
		}
		store = serve.NewStore(snap, serve.StoreConfig{PlanHorizon: *planHorizon})
		src = store
		log.Printf("dgs-api: loaded %d satellites / %d stations in %v (world epoch %d)",
			snap.Sats(), snap.Stations(), time.Since(t0).Round(time.Millisecond), store.Epoch())
	}
	api := serve.NewWithSource(src, serve.Config{
		MaxInFlight:  *inflight,
		CacheEntries: *cache,
		Pprof:        *pprof,
	})

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("dgs-api: %v", err)
	}
	srv := &http.Server{Handler: api.Handler()}
	worldCfg := src.Current().Snap.Config()
	log.Printf("dgs-api: serving on %s (epoch %s, span %v, slot %v)",
		ln.Addr(), worldCfg.Epoch.Format(time.RFC3339), worldCfg.MaxSpan, worldCfg.Slot)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *watchTLE != "" {
		log.Printf("dgs-api: watching %s every %v", *watchTLE, *watchInterval)
		go watchTLEs(ctx, store, *watchTLE, *watchInterval)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	select {
	case err := <-done:
		log.Fatalf("dgs-api: %v", err)
	case <-ctx.Done():
	}
	stop()
	log.Print("dgs-api: draining in-flight requests")
	// Close the world source first: plan-stream handlers exit when their
	// channel closes, so Shutdown's drain isn't held open by long-lived
	// streams. (In front-tier mode this also drops the shard sessions.)
	src.Close()
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		log.Fatalf("dgs-api: shutdown: %v", err)
	}
	if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("dgs-api: %v", err)
	}
	log.Print("dgs-api: clean shutdown")
}

// watchTLEs polls a TLE file by modification time and applies each new
// version as one atomic world update, matching elements to satellites by
// catalog number. Elements for satellites outside the constellation are
// skipped (shared elements files routinely cover several fleets).
func watchTLEs(ctx context.Context, store *serve.Store, path string, interval time.Duration) {
	var lastMod time.Time
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		fi, err := os.Stat(path)
		if err != nil {
			log.Printf("dgs-api: watch-tle: %v", err)
			continue
		}
		if !fi.ModTime().After(lastMod) {
			continue
		}
		b, err := os.ReadFile(path)
		if err != nil {
			log.Printf("dgs-api: watch-tle: %v", err)
			continue
		}
		lastMod = fi.ModTime()
		ups, skipped, err := parseTLEFile(store, string(b))
		if err != nil {
			log.Printf("dgs-api: watch-tle: %s: %v", path, err)
			continue
		}
		if skipped > 0 {
			log.Printf("dgs-api: watch-tle: skipping %d elements outside the constellation", skipped)
		}
		if len(ups) == 0 {
			log.Printf("dgs-api: watch-tle: %s has no applicable elements", path)
			continue
		}
		res, err := store.Apply(serve.Update{TLEs: ups})
		if err != nil {
			log.Printf("dgs-api: watch-tle: apply: %v", err)
			continue
		}
		log.Printf("dgs-api: watch-tle: applied %d elements -> epoch %d (%d slots changed, incremental=%v)",
			len(ups), res.Epoch, res.ChangedSlots, res.Incremental)
	}
}

// parseTLEFile splits a concatenated TLE file (optional title line, then
// element lines 1 and 2, repeated) into per-satellite updates, dropping
// elements whose catalog number the store does not track.
func parseTLEFile(store *serve.Store, text string) (ups []serve.TLEUpdate, skipped int, err error) {
	var name string
	lines := strings.Split(text, "\n")
	for i := 0; i < len(lines); i++ {
		l := strings.TrimRight(lines[i], "\r \t")
		switch {
		case strings.TrimSpace(l) == "":
		case strings.HasPrefix(l, "1 "):
			if i+1 >= len(lines) {
				return nil, 0, errors.New("element line 1 at end of file")
			}
			l2 := strings.TrimRight(lines[i+1], "\r \t")
			if !strings.HasPrefix(l2, "2 ") {
				return nil, 0, errors.New("element line 1 not followed by line 2")
			}
			el, perr := tle.ParseLines(name, l, l2)
			if perr != nil {
				return nil, 0, perr
			}
			if store.HasNorad(el.NoradID) {
				ups = append(ups, serve.TLEUpdate{Name: name, Line1: l, Line2: l2})
			} else {
				skipped++
			}
			name = ""
			i++
		case strings.HasPrefix(l, "2 "):
			return nil, 0, errors.New("dangling element line 2")
		default:
			name = strings.TrimSpace(l)
		}
	}
	return ups, skipped, nil
}
