// Command dgs-api serves the ground-station-as-a-service query layer: an
// HTTP JSON API answering pass-prediction, link-budget, and planning
// queries over a synthetic world loaded once at startup (internal/serve).
//
// Usage:
//
//	dgs-api -listen 127.0.0.1:8041
//	curl 'http://127.0.0.1:8041/v1/passes?sat=3&hours=6'
//
// The server logs its bound address on startup (so -listen :0 works for
// scripts), sheds overload with 429 + Retry-After, and drains in-flight
// requests on SIGINT/SIGTERM before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dgs/internal/cliutil"
	"dgs/internal/serve"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8041", "listen address (use :0 for an ephemeral port)")
	sats := flag.Int("sats", 259, "constellation size")
	stations := flag.Int("stations", 173, "ground-station count")
	seed := flag.Int64("seed", 1, "population seed")
	txFraction := flag.Float64("tx-fraction", 0.1, "fraction of transmit-capable stations")
	clearSky := flag.Bool("clear-sky", false, "disable weather attenuation")
	forecastErr := flag.Float64("forecast-err", 0.3, "saturated forecast error fraction")
	genGB := flag.Float64("gen-gb", 100, "per-satellite capture volume assumed for plan queries, GB/day")
	slot := flag.Duration("slot", time.Minute, "query time grid and default plan slot")
	maxSpan := flag.Duration("max-span", 48*time.Hour, "servable horizon past the epoch")
	workers := flag.Int("workers", 0, "propagation/planning workers (0 = GOMAXPROCS)")
	cache := flag.Int("cache", 4096, "response cache entries (negative disables)")
	inflight := flag.Int("inflight", 0, "max concurrent compute-path requests (0 = 2x workers)")
	pprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on a dedicated address (e.g. localhost:6060), independent of the API listener")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
	flag.Parse()

	cliutil.PositiveInt("sats", *sats)
	cliutil.PositiveInt("stations", *stations)
	cliutil.Fraction("tx-fraction", *txFraction)
	cliutil.Fraction("forecast-err", *forecastErr)
	cliutil.PositiveFloat("gen-gb", *genGB)
	cliutil.PositiveDuration("slot", *slot)
	cliutil.PositiveDuration("max-span", *maxSpan)
	cliutil.NonNegativeInt("workers", *workers)
	cliutil.NonNegativeInt("inflight", *inflight)
	cliutil.PositiveDuration("drain", *drain)

	if *pprofAddr != "" {
		addr, err := cliutil.StartPprof(*pprofAddr)
		if err != nil {
			log.Fatalf("dgs-api: pprof listener: %v", err)
		}
		log.Printf("dgs-api: pprof on http://%s/debug/pprof/", addr)
	}

	t0 := time.Now()
	snap, err := serve.NewSnapshot(serve.SnapshotConfig{
		Satellites:  *sats,
		Stations:    *stations,
		Seed:        *seed,
		TxFraction:  *txFraction,
		ClearSky:    *clearSky,
		ForecastErr: *forecastErr,
		GenGBPerDay: *genGB,
		Slot:        *slot,
		MaxSpan:     *maxSpan,
		Workers:     *workers,
	})
	if err != nil {
		log.Fatalf("dgs-api: %v", err)
	}
	api := serve.New(snap, serve.Config{
		MaxInFlight:  *inflight,
		CacheEntries: *cache,
		Pprof:        *pprof,
	})
	log.Printf("dgs-api: loaded %d satellites / %d stations in %v", snap.Sats(), snap.Stations(), time.Since(t0).Round(time.Millisecond))

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("dgs-api: %v", err)
	}
	srv := &http.Server{Handler: api.Handler()}
	log.Printf("dgs-api: serving on %s (epoch %s, span %v, slot %v)",
		ln.Addr(), snap.Config().Epoch.Format(time.RFC3339), *maxSpan, *slot)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	select {
	case err := <-done:
		log.Fatalf("dgs-api: %v", err)
	case <-ctx.Done():
	}
	stop()
	log.Print("dgs-api: draining in-flight requests")
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		log.Fatalf("dgs-api: shutdown: %v", err)
	}
	if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("dgs-api: %v", err)
	}
	log.Print("dgs-api: clean shutdown")
}
