// Command dgs-sim runs one DGS simulation scenario and prints its result
// distributions. It is the general-purpose entry point; dgs-figures wraps
// it for the paper's exact figures.
//
// Usage:
//
//	dgs-sim -system dgs -days 2 -sats 259 -stations 173
//	dgs-sim -system baseline -days 1 -clear-sky
//	dgs-sim -system dgs25 -value throughput -matcher optimal
//	dgs-sim -days 1 -walker -sats 2000 -stations 500
//
// Long runs can be interrupted and resumed without losing work: with
// -checkpoint, ctrl-C saves the engine state at the next slot boundary,
// and -resume (same scenario flags!) picks the run back up. The resumed
// run's result is bit-identical to an uninterrupted one. -events streams
// every simulation event as JSONL for offline analysis:
//
//	dgs-sim -days 7 -checkpoint state.json        # ctrl-C saves and exits
//	dgs-sim -days 7 -resume state.json            # continues to the end
//	dgs-sim -days 1 -events events.jsonl
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"dgs"
	"dgs/internal/cliutil"
	"dgs/internal/sim"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dgs-sim:", err)
	os.Exit(1)
}

func main() {
	system := flag.String("system", "dgs", "system to simulate: baseline, dgs, dgs25")
	days := flag.Int("days", 1, "simulated days")
	sats := flag.Int("sats", 259, "constellation size")
	walker := flag.Bool("walker", false, "use a Walker-delta shell of -sats satellites (53°, 550 km) instead of the paper's EO mix")
	stations := flag.Int("stations", 173, "DGS network size")
	seed := cliutil.SeedFlag("population and weather")
	value := flag.String("value", "latency", "value function: latency, throughput")
	matcher := flag.String("matcher", "stable", "matching algorithm: stable, optimal, greedy")
	forecastErr := flag.Float64("forecast-err", 0.3, "saturated forecast error fraction [0,1]")
	clearSky := flag.Bool("clear-sky", false, "disable weather entirely")
	txFraction := flag.Float64("tx-fraction", 0.1, "fraction of TX-capable DGS stations")
	beams := flag.Int("beams", 0, "per-station simultaneous links (beamforming extension)")
	genGB := flag.Float64("gen-gb", 100, "per-satellite capture volume, GB/day")
	step := flag.Duration("step", 0, "matching slot length (default 1m)")
	workers := flag.Int("workers", 0, "planning/propagation worker pool size (0 = GOMAXPROCS; result is identical for any value)")
	checkpointPath := flag.String("checkpoint", "", "on interrupt, save engine state to this file instead of aborting")
	resumePath := flag.String("resume", "", "resume from a checkpoint file (scenario flags must match the original run)")
	eventsPath := flag.String("events", "", "stream simulation events to this file as JSONL")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) while the sim runs")
	quiet := flag.Bool("q", false, "suppress per-day progress")
	flag.Parse()
	cliutil.Seed("seed", *seed)
	cliutil.PositiveInt("days", *days)
	cliutil.PositiveInt("sats", *sats)
	cliutil.PositiveInt("stations", *stations)
	cliutil.Fraction("forecast-err", *forecastErr)
	cliutil.Fraction("tx-fraction", *txFraction)
	cliutil.NonNegativeInt("beams", *beams)
	cliutil.PositiveFloat("gen-gb", *genGB)
	cliutil.NonNegativeDuration("step", *step)
	cliutil.NonNegativeInt("workers", *workers)

	if *pprofAddr != "" {
		addr, err := cliutil.StartPprof(*pprofAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dgs-sim: pprof listener: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "dgs-sim: pprof on http://%s/debug/pprof/\n", addr)
	}

	var sys dgs.System
	switch *system {
	case "baseline":
		sys = dgs.SystemBaseline
	case "dgs":
		sys = dgs.SystemDGS
	case "dgs25":
		sys = dgs.SystemDGS25
	default:
		fmt.Fprintf(os.Stderr, "dgs-sim: unknown system %q\n", *system)
		os.Exit(2)
	}

	opt := dgs.Options{
		Days:        *days,
		Satellites:  *sats,
		Walker:      *walker,
		Stations:    *stations,
		Seed:        *seed,
		Value:       dgs.ValueName(*value),
		Matcher:     dgs.MatcherName(*matcher),
		ForecastErr: *forecastErr,
		ClearSky:    *clearSky,
		TxFraction:  *txFraction,
		Beams:       *beams,
		GenGBPerDay: *genGB,
		Step:        *step,
		Workers:     *workers,
	}
	if !*quiet {
		opt.Progress = func(day int, r *sim.Result) {
			fmt.Fprintf(os.Stderr, "day %d: delivered %.0f GB, backlog median %.2f GB, latency median %.1f min\n",
				day, r.DeliveredGB, r.BacklogGB.Median(), r.LatencyMin.Median())
		}
	}

	var recorder *sim.EventRecorder
	if *eventsPath != "" {
		f, err := os.Create(*eventsPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		recorder = sim.NewEventRecorder(f)
		opt.Observers = append(opt.Observers, recorder)
	}

	cfg, err := dgs.Config(sys, opt)
	if err != nil {
		fatal(err)
	}

	var engine *sim.Engine
	if *resumePath != "" {
		raw, err := os.ReadFile(*resumePath)
		if err != nil {
			fatal(err)
		}
		var cp sim.Checkpoint
		if err := json.Unmarshal(raw, &cp); err != nil {
			fatal(fmt.Errorf("checkpoint %s: %w", *resumePath, err))
		}
		if engine, err = sim.Restore(cfg, &cp); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dgs-sim: resumed %s at %v\n", *resumePath, engine.World().Now())
	} else {
		if engine, err = sim.NewEngine(cfg); err != nil {
			fatal(err)
		}
	}

	// Interrupt (ctrl-C) stops at the next slot boundary instead of killing
	// the process mid-slot; with -checkpoint the state is saved there.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	startWall := time.Now()
	for !engine.Done() {
		if ctx.Err() != nil {
			if *checkpointPath == "" {
				fatal(fmt.Errorf("sim: canceled at %v: %w", engine.World().Now(), ctx.Err()))
			}
			cp, err := engine.Checkpoint()
			if err != nil {
				fatal(err)
			}
			raw, err := json.Marshal(cp)
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(*checkpointPath, raw, 0o644); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "dgs-sim: interrupted at %v, state saved to %s (resume with -resume %s)\n",
				engine.World().Now(), *checkpointPath, *checkpointPath)
			return
		}
		if err := engine.Step(); err != nil {
			fatal(err)
		}
	}
	res, err := engine.Finalize()
	if err != nil {
		fatal(err)
	}
	if recorder != nil && recorder.Err() != nil {
		fmt.Fprintf(os.Stderr, "dgs-sim: event stream truncated: %v\n", recorder.Err())
	}

	lat := res.LatencyMin.Summarize()
	back := res.BacklogGB.Summarize()
	fmt.Printf("system        %v\n", sys)
	fmt.Printf("simulated     %d day(s), %d satellites, wall %v\n", *days, *sats, time.Since(startWall).Round(time.Second))
	fmt.Printf("generated     %.1f GB\n", res.GeneratedGB)
	fmt.Printf("delivered     %.1f GB (%.1f%%)\n", res.DeliveredGB, 100*res.DeliveredGB/res.GeneratedGB)
	fmt.Printf("lost/retx     %.1f GB\n", res.LostGB)
	fmt.Printf("latency       median %.1f min, p90 %.1f, p99 %.1f (n=%d)\n", lat.Median, lat.P90, lat.P99, lat.N)
	fmt.Printf("backlog       median %.2f GB, p90 %.2f, p99 %.2f (per sat-day)\n", back.Median, back.P90, back.P99)
	fmt.Printf("slots         matched %d, mispredicted %d, stale %d\n", res.SlotsMatched, res.SlotsMispredicted, res.SlotsStale)
	fmt.Printf("control       tx contacts %d, plan uploads %d\n", res.TxContacts, res.PlanUploads)
}
