// Command dgs-figures regenerates every figure of the paper's evaluation
// (§4): the station map (Fig. 2), the backlog CDF (Fig. 3a), the latency
// CDF (Fig. 3b), and the value-function comparison (Fig. 3c), plus the
// headline summary numbers. Output is a text table plus optional CSV for
// plotting.
//
// Usage:
//
//	dgs-figures -fig 3a -days 2
//	dgs-figures -fig all -days 2 -csv out/
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"

	"dgs"
	"dgs/internal/cliutil"
	"dgs/internal/metrics"
	"dgs/internal/sim"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 2, 3a, 3b, 3c, summary, all")
	days := flag.Int("days", 2, "simulated days per system")
	seed := cliutil.SeedFlag("population and weather")
	csvDir := flag.String("csv", "", "directory to write CDF CSVs into (optional)")
	sats := flag.Int("sats", 259, "constellation size")
	stations := flag.Int("stations", 173, "DGS network size")
	flag.Parse()
	cliutil.Seed("seed", *seed)
	cliutil.PositiveInt("days", *days)
	cliutil.PositiveInt("sats", *sats)
	cliutil.PositiveInt("stations", *stations)

	opt := dgs.Options{
		Days:       *days,
		Seed:       *seed,
		Satellites: *sats,
		Stations:   *stations,
		Progress: func(day int, r *sim.Result) {
			fmt.Fprintf(os.Stderr, "  … day %d done (delivered %.0f GB so far)\n", day, r.DeliveredGB)
		},
	}

	// One interrupt-aware context spans every figure's runs.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	want := strings.ToLower(*fig)
	has := func(f string) bool { return want == "all" || want == f }

	if has("2") {
		figure2(opt, *csvDir)
	}
	if has("3a") || has("3b") || has("summary") {
		figure3ab(ctx, opt, *csvDir, has("3a"), has("3b"), has("summary"))
	}
	if has("3c") {
		figure3c(ctx, opt, *csvDir)
	}
}

// figure2 renders the ground-station map as ASCII (Fig. 2) and CSV.
func figure2(opt dgs.Options, csvDir string) {
	fmt.Println("== Figure 2: DGS ground stations ==")
	_, net := dgs.Population(opt)

	const w, h = 100, 30
	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(".", w))
	}
	for _, gs := range net {
		col := int((gs.Location.LonDeg() + 180) / 360 * float64(w-1))
		row := int((90 - gs.Location.LatDeg()) / 180 * float64(h-1))
		if row >= 0 && row < h && col >= 0 && col < w {
			mark := byte('o')
			if gs.TxCapable {
				mark = 'T'
			}
			grid[row][col] = mark
		}
	}
	for _, row := range grid {
		fmt.Println(string(row))
	}
	fmt.Printf("%d stations (%d transmit-capable 'T')\n\n", len(net), len(net.TxStations()))

	if csvDir != "" {
		var b strings.Builder
		b.WriteString("name,lat_deg,lon_deg,tx_capable\n")
		for _, gs := range net {
			fmt.Fprintf(&b, "%s,%.4f,%.4f,%v\n", gs.Name, gs.Location.LatDeg(), gs.Location.LonDeg(), gs.TxCapable)
		}
		writeFile(csvDir, "fig2_stations.csv", b.String())
	}
}

// figure3ab runs the three systems once and prints both the backlog and
// latency views (Fig. 3a, 3b) plus the paper-style summary.
func figure3ab(ctx context.Context, opt dgs.Options, csvDir string, show3a, show3b, showSummary bool) {
	systems := []dgs.System{dgs.SystemBaseline, dgs.SystemDGS, dgs.SystemDGS25}
	results := make([]*sim.Result, len(systems))
	for i, sys := range systems {
		fmt.Fprintf(os.Stderr, "running %v (%d days)…\n", sys, opt.Days)
		res, err := dgs.Run(ctx, sys, opt)
		if err != nil {
			fatal(err)
		}
		results[i] = res
	}

	if show3a {
		fmt.Println("== Figure 3a: per-satellite daily data backlog (GB) ==")
		rows := make([]struct {
			Label string
			S     metrics.Summary
		}, len(systems))
		for i := range systems {
			rows[i].Label = systems[i].String()
			rows[i].S = results[i].BacklogGB.Summarize()
		}
		fmt.Print(metrics.Table(rows))
		fmt.Println("paper reports:     Baseline 8.5/28.9/80.7   DGS 1.9/5.3/16.7   DGS(25%) 3.9/20.1/66.7")
		fmt.Println()
		if csvDir != "" {
			writeCDFs(csvDir, "fig3a_backlog", systems, results, func(r *sim.Result) *metrics.Dist { return &r.BacklogGB })
		}
	}
	if show3b {
		fmt.Println("== Figure 3b: capture→delivery latency (minutes) ==")
		rows := make([]struct {
			Label string
			S     metrics.Summary
		}, len(systems))
		for i := range systems {
			rows[i].Label = systems[i].String()
			rows[i].S = results[i].LatencyMin.Summarize()
		}
		fmt.Print(metrics.Table(rows))
		fmt.Println("paper reports:     Baseline 58/293/438   DGS 12/44/88   DGS(25%) 20/58/88")
		fmt.Println()
		if csvDir != "" {
			writeCDFs(csvDir, "fig3b_latency", systems, results, func(r *sim.Result) *metrics.Dist { return &r.LatencyMin })
		}
	}
	if showSummary {
		fmt.Println("== Headline summary (§4) ==")
		for i, sys := range systems {
			r := results[i]
			fmt.Printf("%-10s delivered %8.1f GB of %8.1f generated; lost %7.1f GB; tx contacts %d; plan uploads %d\n",
				sys, r.DeliveredGB, r.GeneratedGB, r.LostGB, r.TxContacts, r.PlanUploads)
		}
		fmt.Println()
	}
}

// figure3c compares value functions on the 25% network (Fig. 3c).
func figure3c(ctx context.Context, opt dgs.Options, csvDir string) {
	fmt.Println("== Figure 3c: value-function adaptability (latency, minutes) ==")
	type variant struct {
		label string
		sys   dgs.System
		value dgs.ValueName
	}
	variants := []variant{
		{"Baseline (L)", dgs.SystemBaseline, dgs.ValueLatency},
		{"DGS(25% L)", dgs.SystemDGS25, dgs.ValueLatency},
		{"DGS(25% T)", dgs.SystemDGS25, dgs.ValueThroughput},
	}
	rows := make([]struct {
		Label string
		S     metrics.Summary
	}, len(variants))
	dists := make([]*metrics.Dist, len(variants))
	for i, v := range variants {
		o := opt
		o.Value = v.value
		fmt.Fprintf(os.Stderr, "running %s…\n", v.label)
		res, err := dgs.Run(ctx, v.sys, o)
		if err != nil {
			fatal(err)
		}
		rows[i].Label = v.label
		rows[i].S = res.LatencyMin.Summarize()
		dists[i] = &res.LatencyMin
	}
	fmt.Print(metrics.Table(rows))
	fmt.Println("paper reports:     DGS(25% L) 20/58/-   DGS(25% T) 22/119/-")
	fmt.Println()
	if csvDir != "" {
		var b strings.Builder
		b.WriteString("system,latency_min,cdf\n")
		for i, v := range variants {
			for _, p := range dists[i].CDF(200) {
				fmt.Fprintf(&b, "%s,%.3f,%.5f\n", v.label, p.Value, p.F)
			}
		}
		writeFile(csvDir, "fig3c_valuefunction.csv", b.String())
	}
}

func writeCDFs(dir, name string, systems []dgs.System, results []*sim.Result, pick func(*sim.Result) *metrics.Dist) {
	var b strings.Builder
	b.WriteString("system,value,cdf\n")
	for i, sys := range systems {
		for _, p := range pick(results[i]).CDF(200) {
			fmt.Fprintf(&b, "%s,%.3f,%.5f\n", sys, p.Value, p.F)
		}
	}
	writeFile(dir, name+".csv", b.String())
}

func writeFile(dir, name, content string) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dgs-figures:", err)
	os.Exit(1)
}
