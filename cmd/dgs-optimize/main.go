// Command dgs-optimize answers the network-design question the paper
// raises but never settles: which K of N candidate ground-station sites
// maximize what the network delivers? It runs the internal/optimize
// search offline — lazy greedy-submodular selection, optionally refined
// by seeded simulated annealing — where every candidate evaluation is a
// full deterministic simulation sharing one warm-start checkpoint.
//
// Usage:
//
//	dgs-optimize -sats 40 -stations 25 -k 8
//	dgs-optimize -stations 25 -k 8 -objective p90_latency -strategy greedy+anneal
//	dgs-optimize -stations 12 -candidates 6,7,8,9,10,11 -k 2 -json
//
// By default every receive-only station is a candidate and the
// TX-capable stations are the always-on base network (disabling a TX
// site would ablate the hybrid control plane, not just capacity);
// -candidates selects explicit station indices instead. The report is
// byte-deterministic for fixed flags: -workers changes only wall time,
// never the winning set — progress and timing go to stderr so stdout
// can be compared across runs.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"dgs/internal/cliutil"
	"dgs/internal/dataset"
	"dgs/internal/optimize"
	"dgs/internal/sim"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dgs-optimize:", err)
	os.Exit(1)
}

func main() {
	sats := flag.Int("sats", 40, "constellation size")
	stations := flag.Int("stations", 25, "ground-network size (base + candidate sites)")
	seed := cliutil.SeedFlag("population, weather, and annealing")
	txFraction := flag.Float64("tx-fraction", 0.1, "fraction of TX-capable stations")
	clearSky := flag.Bool("clear-sky", false, "disable weather entirely")
	forecastErr := flag.Float64("forecast-err", 0.3, "saturated forecast error fraction [0,1]")
	genGB := flag.Float64("gen-gb", 100, "per-satellite capture volume, GB/day")
	k := flag.Int("k", 4, "number of candidate sites to select")
	candList := flag.String("candidates", "", "comma-separated candidate station indices (default: every receive-only station)")
	objective := flag.String("objective", "delivered_gb", "objective: delivered_gb, p90_latency")
	strategy := flag.String("strategy", "greedy", "search strategy: greedy, anneal, greedy+anneal")
	horizon := flag.Duration("horizon", 2*time.Hour, "evaluated span after the warm-start prefix")
	warmup := flag.Duration("warmup", time.Hour, "shared warm-start prefix simulated once with all candidates off (0 disables sharing)")
	annealIters := flag.Int("anneal-iters", optimize.DefaultAnnealIters, "annealing proposals (anneal strategies only)")
	workers := flag.Int("workers", 0, "evaluation fan-out width (0 = GOMAXPROCS; result is identical for any value)")
	jsonOut := flag.Bool("json", false, "emit the full JSON report instead of the marginal-value table")
	quiet := flag.Bool("q", false, "suppress progress on stderr")
	flag.Parse()
	cliutil.PositiveInt("sats", *sats)
	cliutil.PositiveInt("stations", *stations)
	cliutil.Seed("seed", *seed)
	cliutil.Fraction("tx-fraction", *txFraction)
	cliutil.Fraction("forecast-err", *forecastErr)
	cliutil.PositiveFloat("gen-gb", *genGB)
	cliutil.PositiveInt("k", *k)
	cliutil.PositiveDuration("horizon", *horizon)
	cliutil.NonNegativeDuration("warmup", *warmup)
	cliutil.PositiveInt("anneal-iters", *annealIters)
	cliutil.NonNegativeInt("workers", *workers)

	// Population synthesis matches the simulator and the serving layer:
	// satellites seed Seed+1, stations Seed+2, weather Seed+7 — so an
	// optimized network corresponds to the world dgs-sim and dgs-api
	// would run for the same -seed.
	start := time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC)
	net := dataset.Stations(dataset.StationOptions{N: *stations, Seed: *seed + 2, TxFraction: *txFraction})
	tles := dataset.Satellites(dataset.SatelliteOptions{N: *sats, Seed: *seed + 1, Epoch: start})

	var cands []int
	if *candList == "" {
		for i, gs := range net {
			if !gs.TxCapable {
				cands = append(cands, i)
			}
		}
	} else {
		for _, part := range strings.Split(*candList, ",") {
			c, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				cliutil.Failf("invalid -candidates: %q: %v", part, err)
			}
			cands = append(cands, c)
		}
	}

	obj, err := optimize.ObjectiveByName(*objective)
	if err != nil {
		cliutil.Failf("invalid -objective: %v", err)
	}

	ev, err := optimize.NewEvaluator(optimize.Instance{
		Sim: sim.Config{
			Start:         start,
			Duration:      *warmup + *horizon,
			Stations:      net,
			TLEs:          tles,
			WeatherSeed:   uint64(*seed) + 7,
			ClearSky:      *clearSky,
			ForecastErr:   *forecastErr,
			GenBitsPerDay: *genGB * sim.GB,
			Hybrid:        true,
			Workers:       *workers,
		},
		Candidates: cands,
		Warmup:     *warmup,
		Objective:  obj,
	})
	if err != nil {
		fatal(err)
	}

	var progress func(optimize.Progress)
	if !*quiet {
		progress = func(p optimize.Progress) {
			fmt.Fprintf(os.Stderr, "dgs-optimize: %s/%s %d/%d score %.3f (%d sims, %d cached) set %v\n",
				p.Strategy, p.Phase, p.Done, p.Total, p.Score, p.Evaluations, p.CacheHits, p.Incumbent)
		}
	}
	var searchers []optimize.Searcher
	switch *strategy {
	case "greedy":
		searchers = []optimize.Searcher{&optimize.Greedy{Workers: *workers, OnProgress: progress}}
	case "anneal":
		searchers = []optimize.Searcher{&optimize.Anneal{Seed: *seed, Iters: *annealIters, OnProgress: progress}}
	case "greedy+anneal":
		searchers = []optimize.Searcher{
			&optimize.Greedy{Workers: *workers, OnProgress: progress},
			&optimize.Anneal{Seed: *seed, Iters: *annealIters, OnProgress: progress},
		}
	default:
		cliutil.Failf("invalid -strategy: %q (want greedy, anneal, or greedy+anneal)", *strategy)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	startWall := time.Now()
	var rep *optimize.Report
	var reps []*optimize.Report
	for _, sr := range searchers {
		if a, ok := sr.(*optimize.Anneal); ok && rep != nil {
			a.Init = rep.Selected
		}
		if rep, err = sr.Search(ctx, ev, *k); err != nil {
			fatal(err)
		}
		reps = append(reps, rep)
	}
	fmt.Fprintf(os.Stderr, "dgs-optimize: %d evaluations (%d cache hits) in %v\n",
		rep.Evaluations, rep.CacheHits, time.Since(startWall).Round(time.Millisecond))

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
		return
	}

	// The marginal-value table: the diminishing-returns evidence for
	// "how many sites are enough". An anneal stage's curve holds only its
	// accepted swaps, so the table comes from the first stage with picks
	// (the greedy sweep in a chain). Deterministic for fixed flags.
	curveRep := rep
	for _, r := range reps {
		if len(r.Curve) > 0 {
			curveRep = r
			break
		}
	}
	fmt.Printf("strategy      %s (%s)\n", *strategy, rep.Objective)
	fmt.Printf("candidates    %d sites, selecting %d\n", rep.Candidates, rep.K)
	fmt.Printf("baseline      %.3f\n", rep.Baseline)
	fmt.Printf("\n pick  station                 site        gain       total\n")
	for i, p := range curveRep.Curve {
		fmt.Printf("  %3d  %-22s  %4d  %+10.3f  %10.3f\n", i+1, p.Station, p.Candidate, p.Gain, p.Score)
	}
	fmt.Printf("\nselected      %v\n", rep.Selected)
	fmt.Printf("names         %s\n", strings.Join(rep.SelectedNames, ", "))
	fmt.Printf("score         %.3f\n", rep.Score)
}
