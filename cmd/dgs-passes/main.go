// Command dgs-passes predicts satellite passes over a ground station — the
// orbit-calculation building block of the DGS scheduler (§3.1), exposed as
// a standalone tool.
//
// Usage:
//
//	dgs-passes -tle iss.txt -lat 47.37 -lon 8.54 -hours 24
//	dgs-passes -builtin iss -lat 78.2 -lon 15.4 -hours 12 -min-el 5
//
// With -sats it switches to population mode: instead of one satellite over
// one station, it predicts every contact window of a synthetic population
// (the paper's EO mix, or a Walker-delta shell with -walker) against a
// synthetic station network, using the same coarse-to-fine predictor and
// spatial candidate index the scheduler runs on:
//
//	dgs-passes -sats 259 -stations 173 -hours 12
//	dgs-passes -walker -sats 2000 -stations 500 -hours 1 -top 10
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dgs/internal/astro"
	"dgs/internal/cliutil"
	"dgs/internal/dataset"
	"dgs/internal/frames"
	"dgs/internal/linkbudget"
	"dgs/internal/orbit"
	"dgs/internal/passes"
	"dgs/internal/poscache"
	"dgs/internal/sgp4"
	"dgs/internal/tle"
)

func main() {
	tleFile := flag.String("tle", "", "path to a TLE file (2 or 3 lines)")
	builtin := flag.String("builtin", "", "use an embedded TLE: iss, noaa18")
	lat := flag.Float64("lat", 47.37, "station latitude, degrees")
	lon := flag.Float64("lon", 8.54, "station longitude, degrees")
	alt := flag.Float64("alt", 0.4, "station altitude, km")
	hours := flag.Float64("hours", 24, "search window, hours")
	minEl := flag.Float64("min-el", 0, "elevation mask, degrees")
	from := flag.String("from", "", "start time RFC3339 (default: TLE epoch)")
	rates := flag.Bool("rates", false, "estimate DVB-S2 rate for a 1 m DGS dish at culmination")
	sats := flag.Int("sats", 0, "population mode: predict windows for this many synthetic satellites")
	stations := flag.Int("stations", 173, "population mode: synthetic station network size")
	walker := flag.Bool("walker", false, "population mode: Walker-delta shell (53°, 550 km) instead of the paper's EO mix")
	fullScan := flag.Bool("full-scan", false, "population mode: disable the spatial candidate index (differential check)")
	workers := flag.Int("workers", 0, "population mode: sweep/refinement worker pool size (0 = GOMAXPROCS; windows are identical for any value)")
	seed := cliutil.SeedFlag("population-mode synthesis")
	top := flag.Int("top", 20, "population mode: windows to print (0 = summary only)")
	flag.Parse()
	cliutil.Seed("seed", *seed)
	cliutil.Range("lat", *lat, -90, 90)
	cliutil.Range("lon", *lon, -180, 180)
	cliutil.PositiveFloat("hours", *hours)
	cliutil.Range("min-el", *minEl, 0, 90)
	cliutil.NonNegativeInt("sats", *sats)
	cliutil.PositiveInt("stations", *stations)
	cliutil.NonNegativeInt("workers", *workers)
	cliutil.NonNegativeInt("top", *top)

	if *sats > 0 {
		populationMain(*sats, *stations, *walker, *fullScan, *workers, *seed, *hours, *from, *top)
		return
	}

	var text string
	switch {
	case *tleFile != "":
		b, err := os.ReadFile(*tleFile)
		if err != nil {
			fatal(err)
		}
		text = string(b)
	case *builtin != "":
		all := dataset.RealTLEs()
		switch strings.ToLower(*builtin) {
		case "iss":
			text = all[1]
		case "noaa18":
			text = all[2]
		default:
			fatal(fmt.Errorf("unknown builtin %q (try iss, noaa18)", *builtin))
		}
	default:
		fatal(fmt.Errorf("need -tle FILE or -builtin NAME"))
	}

	el, err := tle.Parse(text)
	if err != nil {
		fatal(err)
	}
	prop, err := sgp4.New(el)
	if err != nil {
		fatal(err)
	}

	start := el.Epoch
	if *from != "" {
		start, err = time.Parse(time.RFC3339, *from)
		if err != nil {
			fatal(err)
		}
	}

	obs := frames.NewGeodeticDeg(*lat, *lon, *alt)
	name := el.Name
	if name == "" {
		name = fmt.Sprintf("NORAD %d", el.NoradID)
	}
	fmt.Printf("%s over (%.3f°, %.3f°), %v from %s, mask %.0f°\n",
		name, *lat, *lon, time.Duration(*hours*float64(time.Hour)).Round(time.Minute),
		start.Format(time.RFC3339), *minEl)
	fmt.Printf("orbit: %.1f min period, ~%.0f km altitude, %.2f° inclination\n\n",
		el.PeriodMinutes(), (el.ApogeeKm()+el.PerigeeKm())/2, el.InclinationDeg)

	passes, err := orbit.Passes(prop, obs, start, time.Duration(*hours*float64(time.Hour)), orbit.PassOptions{
		MinElevationRad: *minEl * astro.Deg2Rad,
	})
	if err != nil {
		fatal(err)
	}
	if len(passes) == 0 {
		fmt.Println("no passes in window")
		return
	}
	for i, p := range passes {
		fmt.Printf("%2d  rise %s  culm %s  set %s  dur %5.1f min  max el %5.1f°",
			i+1,
			p.Rise.Format("15:04:05"), p.Culmination.Format("15:04:05"), p.Set.Format("15:04:05"),
			p.Duration().Minutes(), p.MaxElevationDeg())
		if *rates {
			o, err := orbit.Observe(prop, obs, p.Culmination)
			if err == nil {
				geo := linkbudget.Geometry{
					RangeKm:       o.Look.RangeKm,
					ElevationRad:  o.Look.ElevationRad,
					StationLatRad: obs.LatRad,
				}
				r := linkbudget.RateBps(linkbudget.DefaultRadio(), linkbudget.DGSTerminal(), geo, linkbudget.Conditions{})
				fmt.Printf("  rate %6.1f Mbps", r/1e6)
			}
		}
		fmt.Println()
	}
}

// populationMain predicts every contact window of a synthetic population
// against a synthetic DGS network — the scheduler's pass-prediction hot
// path as a standalone tool. It reports the candidate-index pruning stats
// alongside the windows so the spatial index's effect is visible from the
// command line.
func populationMain(nSat, nGs int, walker, fullScan bool, workers int, seed int64, hours float64, from string, top int) {
	start := time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC)
	if from != "" {
		var err error
		if start, err = time.Parse(time.RFC3339, from); err != nil {
			fatal(err)
		}
	}
	var tles []tle.TLE
	kind := "EO mix"
	if walker {
		tles = dataset.Walker(dataset.WalkerOptions{T: nSat, Epoch: start})
		kind = "Walker shell"
	} else {
		tles = dataset.Satellites(dataset.SatelliteOptions{N: nSat, Seed: seed + 1, Epoch: start})
	}
	net := dataset.Stations(dataset.StationOptions{N: nGs, Seed: seed + 2})

	props := make([]orbit.Propagator, 0, len(tles))
	for _, el := range tles {
		p, err := sgp4.New(el)
		if err != nil {
			fatal(err)
		}
		props = append(props, p)
	}
	horizon := time.Duration(hours * float64(time.Hour))
	cache := poscache.New(props)
	cache.Workers = workers
	pred := passes.New(cache, net, passes.Config{FullScan: fullScan, Workers: workers})

	t0 := time.Now()
	ws := pred.WindowsBetween(nil, start, start.Add(horizon))
	elapsed := time.Since(t0)

	mode := "spatial index"
	if fullScan {
		mode = "full scan"
	}
	fmt.Printf("%d-satellite %s × %d stations, %v from %s (%s)\n",
		nSat, kind, nGs, horizon.Round(time.Minute), start.Format(time.RFC3339), mode)
	st := pred.Stats()
	fmt.Printf("%d windows in %v; evaluated %d of %d pairs (%.2f%%) over %d instants, %d refine bisections\n\n",
		len(ws), elapsed.Round(time.Millisecond),
		st.CandidatePairs, st.CrossPairs,
		100*float64(st.CandidatePairs)/float64(st.CrossPairs), st.Instants,
		st.RefineBisections)
	for i, w := range ws {
		if i >= top {
			fmt.Printf("... %d more\n", len(ws)-top)
			break
		}
		set := "(in progress)"
		if !w.Set.IsZero() {
			set = w.Set.Format("15:04:05")
		}
		fmt.Printf("sat %5d  gs %4d  rise %s  set %s  dur %5.1f min\n",
			w.Sat, w.Station, w.Rise.Format("15:04:05"), set,
			w.End.Sub(w.Start).Minutes())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dgs-passes:", err)
	os.Exit(1)
}
