// Command dgs-shard serves one partition of a federated control plane: it
// loads the full synthetic population, keeps only the satellites the
// pinned consistent-hash ring assigns to its shard index (stations are
// shared fleet-wide), plans that partition with the same incremental
// planner the monolith uses, and answers a front tier (dgs-api -shards)
// over the framed wire protocol — topology, live and scratch plans, pass
// windows, link budgets, and world updates.
//
// Every shard of a fleet must be started with identical world flags and
// the same -shards count; the front tier validates this at startup and
// refuses mismatched fleets.
//
// Usage:
//
//	dgs-shard -shard 0 -shards 2 -listen 127.0.0.1:9050
//	dgs-shard -shard 1 -shards 2 -listen 127.0.0.1:9051
//	dgs-api   -shards 127.0.0.1:9050,127.0.0.1:9051
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dgs/internal/cliutil"
	"dgs/internal/serve"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9050", "listen address (use :0 for an ephemeral port)")
	shardIdx := flag.Int("shard", 0, "this backend's shard index in [0, shards)")
	shards := flag.Int("shards", 1, "total shard count in the fleet")
	sats := flag.Int("sats", 259, "constellation size (full fleet, pre-partition)")
	stations := flag.Int("stations", 173, "ground-station count (shared by every shard)")
	seed := cliutil.SeedFlag("population")
	txFraction := flag.Float64("tx-fraction", 0.1, "fraction of transmit-capable stations")
	clearSky := flag.Bool("clear-sky", false, "disable weather attenuation")
	forecastErr := flag.Float64("forecast-err", 0.3, "saturated forecast error fraction")
	genGB := flag.Float64("gen-gb", 100, "per-satellite capture volume assumed for plan queries, GB/day")
	slot := flag.Duration("slot", time.Minute, "query time grid and default plan slot")
	maxSpan := flag.Duration("max-span", 48*time.Hour, "servable horizon past the epoch")
	planHorizon := flag.Duration("plan-horizon", time.Hour, "live-plan horizon maintained across epoch swaps")
	workers := flag.Int("workers", 0, "propagation/planning workers (0 = GOMAXPROCS)")
	flag.Parse()
	cliutil.Seed("seed", *seed)

	cliutil.PositiveInt("shards", *shards)
	cliutil.NonNegativeInt("shard", *shardIdx)
	if *shardIdx >= *shards {
		cliutil.Failf("invalid -shard: index %d out of range for %d shards", *shardIdx, *shards)
	}
	cliutil.PositiveInt("sats", *sats)
	cliutil.PositiveInt("stations", *stations)
	cliutil.Fraction("tx-fraction", *txFraction)
	cliutil.Fraction("forecast-err", *forecastErr)
	cliutil.PositiveFloat("gen-gb", *genGB)
	cliutil.PositiveDuration("slot", *slot)
	cliutil.PositiveDuration("max-span", *maxSpan)
	cliutil.PositiveDuration("plan-horizon", *planHorizon)
	cliutil.NonNegativeInt("workers", *workers)

	t0 := time.Now()
	snap, part, err := serve.NewShardWorld(serve.SnapshotConfig{
		Satellites:  *sats,
		Stations:    *stations,
		Seed:        *seed,
		TxFraction:  *txFraction,
		ClearSky:    *clearSky,
		ForecastErr: *forecastErr,
		GenGBPerDay: *genGB,
		Slot:        *slot,
		MaxSpan:     *maxSpan,
		Workers:     *workers,
	}, *shardIdx, *shards)
	if err != nil {
		log.Fatalf("dgs-shard: %v", err)
	}
	store := serve.NewStore(snap, serve.StoreConfig{PlanHorizon: *planHorizon})
	log.Printf("dgs-shard: loaded partition %d/%d (%d of %d satellites) in %v (world epoch %d)",
		part.Shard, part.Shards, part.Len(), *sats, time.Since(t0).Round(time.Millisecond), store.Epoch())

	srv := serve.NewShardServer(store, part)
	srv.Logf = log.Printf
	addr, err := srv.Listen(*listen)
	if err != nil {
		log.Fatalf("dgs-shard: %v", err)
	}
	log.Printf("dgs-shard: serving shard %d/%d (%d satellites) on %s",
		part.Shard, part.Shards, part.Len(), addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()
	log.Print("dgs-shard: shutting down")
	srv.Close()
	store.Close()
	log.Print("dgs-shard: clean shutdown")
}
