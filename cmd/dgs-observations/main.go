// Command dgs-observations collects a SatNOGS-style observation log from
// the synthetic population and prints the contact-geometry statistics the
// paper validates against its SatNOGS measurements (§4): pass durations,
// culmination elevations, and per-station observation rates.
//
// Usage:
//
//	dgs-observations -sats 10 -stations 20 -hours 24
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dgs/internal/cliutil"
	"dgs/internal/dataset"
	"dgs/internal/orbit"
	"dgs/internal/sgp4"
	"dgs/internal/trace"
)

func main() {
	sats := flag.Int("sats", 10, "satellites to observe")
	stations := flag.Int("stations", 20, "stations observing")
	hours := flag.Float64("hours", 24, "observation window, hours")
	seed := cliutil.SeedFlag("population")
	flag.Parse()
	cliutil.Seed("seed", *seed)
	cliutil.PositiveInt("sats", *sats)
	cliutil.PositiveInt("stations", *stations)
	cliutil.PositiveFloat("hours", *hours)

	start := time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC)
	els := dataset.Satellites(dataset.SatelliteOptions{N: *sats, Seed: *seed, Epoch: start})
	props := make([]orbit.Propagator, 0, len(els))
	for _, el := range els {
		p, err := sgp4.New(el)
		if err != nil {
			fatal(err)
		}
		props = append(props, p)
	}
	net := dataset.Stations(dataset.StationOptions{N: *stations, Seed: *seed})

	window := time.Duration(*hours * float64(time.Hour))
	fmt.Fprintf(os.Stderr, "predicting %d×%d pass sets over %v…\n", *sats, *stations, window)
	log, err := trace.Collect(props, net, start, window)
	if err != nil {
		fatal(err)
	}

	days := *hours / 24
	dur := log.Durations()
	el := log.MaxElevations()
	rate := log.PassesPerStationDay(days)
	fmt.Printf("observations        %d\n", log.Len())
	fmt.Printf("pass duration       median %.1f min, p90 %.1f, max %.1f\n",
		dur.Median(), dur.Percentile(90), dur.Max())
	fmt.Printf("culmination         median %.1f°, p90 %.1f°\n", el.Median(), el.Percentile(90))
	fmt.Printf("passes/station/day  median %.1f, max %.1f\n", rate.Median(), rate.Max())
	if err := log.ValidateAgainstPaper(days, *sats); err != nil {
		fmt.Printf("validation          FAILED: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("validation          ok (paper §2 contact-geometry anchors)\n")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dgs-observations:", err)
	os.Exit(1)
}
