// Command dgs-tle inspects, validates, and synthesizes two-line element
// sets.
//
// Usage:
//
//	dgs-tle -inspect iss.txt           # parse and describe a TLE file
//	dgs-tle -gen 10 -seed 3            # print 10 synthetic EO constellation TLEs
//	dgs-tle -builtin                   # print the embedded fixture TLEs
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dgs/internal/cliutil"
	"dgs/internal/dataset"
	"dgs/internal/sgp4"
	"dgs/internal/tle"
)

func main() {
	inspect := flag.String("inspect", "", "TLE file to parse and describe")
	gen := flag.Int("gen", 0, "generate N synthetic Earth-observation TLEs")
	seed := cliutil.SeedFlag("-gen synthesis")
	builtin := flag.Bool("builtin", false, "print the embedded fixture TLEs")
	flag.Parse()
	cliutil.Seed("seed", *seed)
	cliutil.NonNegativeInt("gen", *gen)

	switch {
	case *inspect != "":
		b, err := os.ReadFile(*inspect)
		if err != nil {
			fatal(err)
		}
		el, err := tle.Parse(string(b))
		if err != nil {
			fatal(err)
		}
		describe(el)
	case *gen > 0:
		els := dataset.Satellites(dataset.SatelliteOptions{N: *gen, Seed: *seed})
		for _, el := range els {
			fmt.Println(el.Format())
		}
	case *builtin:
		for _, s := range dataset.RealTLEs() {
			fmt.Println(s)
			fmt.Println()
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func describe(el tle.TLE) {
	name := el.Name
	if name == "" {
		name = "(unnamed)"
	}
	fmt.Printf("name            %s\n", name)
	fmt.Printf("norad id        %d (%c), intl %s\n", el.NoradID, el.Classification, el.IntlDesignator)
	fmt.Printf("epoch           %s\n", el.Epoch.Format(time.RFC3339Nano))
	fmt.Printf("inclination     %.4f°\n", el.InclinationDeg)
	fmt.Printf("raan            %.4f°\n", el.RAANDeg)
	fmt.Printf("eccentricity    %.7f\n", el.Eccentricity)
	fmt.Printf("arg perigee     %.4f°\n", el.ArgPerigeeDeg)
	fmt.Printf("mean anomaly    %.4f°\n", el.MeanAnomalyDeg)
	fmt.Printf("mean motion     %.8f rev/day (period %.1f min)\n", el.MeanMotion, el.PeriodMinutes())
	fmt.Printf("bstar           %g\n", el.BStar)
	fmt.Printf("apogee/perigee  %.0f / %.0f km\n", el.ApogeeKm(), el.PerigeeKm())
	if _, err := sgp4.New(el); err != nil {
		fmt.Printf("sgp4            REJECTED: %v\n", err)
	} else {
		fmt.Printf("sgp4            ok (near-Earth)\n")
	}
	fmt.Println()
	fmt.Println(el.Format())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dgs-tle:", err)
	os.Exit(1)
}
