// Command dgs-backend runs the DGS backend scheduler service: it accepts
// ground-station connections over TCP (internal/proto), collates chunk
// receipts into per-satellite ack digests, and periodically broadcasts a
// downlink schedule computed from the synthetic population.
//
// Usage:
//
//	dgs-backend -listen 127.0.0.1:7700 -sats 20 -stations 40
//
// Pair it with one or more dgs-station processes.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"dgs/internal/backend"
	"dgs/internal/cliutil"
	"dgs/internal/core"
	"dgs/internal/dataset"
	"dgs/internal/linkbudget"
	"dgs/internal/proto"
	"dgs/internal/sgp4"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7700", "listen address")
	sats := flag.Int("sats", 20, "constellation size for the demo schedule")
	stations := flag.Int("stations", 40, "station count for the demo schedule")
	seed := cliutil.SeedFlag("population")
	every := flag.Duration("plan-every", 30*time.Second, "schedule broadcast interval (wall clock)")
	horizon := flag.Duration("horizon", 30*time.Minute, "plan horizon (simulated)")
	readTimeout := flag.Duration("read-timeout", 0, "per-frame read deadline (default 90s; heartbeats keep idle stations alive)")
	writeTimeout := flag.Duration("write-timeout", 0, "per-frame write deadline (default 10s)")
	flag.Parse()
	cliutil.Seed("seed", *seed)

	srv := backend.NewServer(nil)
	srv.Logf = log.Printf
	srv.ReadTimeout = *readTimeout
	srv.WriteTimeout = *writeTimeout
	addr, err := srv.Listen(*listen)
	if err != nil {
		log.Fatalf("dgs-backend: %v", err)
	}
	log.Printf("dgs-backend: listening on %s", addr)

	// Build the scheduler over the synthetic population.
	els := dataset.Satellites(dataset.SatelliteOptions{N: *sats, Seed: *seed})
	snaps := make([]core.SatSnapshot, 0, len(els))
	for _, el := range els {
		p, err := sgp4.New(el)
		if err != nil {
			log.Fatalf("dgs-backend: %v", err)
		}
		snaps = append(snaps, core.SatSnapshot{Prop: p, PendingBits: 8e10, OldestAge: time.Hour})
	}
	sched := &core.Scheduler{
		Radio:    linkbudget.DefaultRadio(),
		Stations: dataset.Stations(dataset.StationOptions{N: *stations, Seed: *seed}),
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	go func() {
		for {
			now := time.Now().UTC()
			plan := sched.PlanEpoch(snaps, now, *horizon, time.Minute, 100*8e9/86400)
			wire := &proto.Schedule{
				Version: uint32(plan.Version),
				Issued:  plan.Issued,
				SlotDur: plan.SlotDur,
			}
			for _, slot := range plan.Slots {
				ws := proto.Slot{}
				for _, a := range slot.Assignments {
					ws.Assignments = append(ws.Assignments, proto.Assignment{
						Sat: uint32(a.Sat), Station: uint32(a.Station), RateBps: uint64(a.PlannedRateBps),
					})
				}
				wire.Slots = append(wire.Slots, ws)
			}
			srv.Broadcast(wire)
			n := 0
			for _, s := range wire.Slots {
				n += len(s.Assignments)
			}
			log.Printf("dgs-backend: broadcast plan v%d (%d slots, %d assignments)", wire.Version, len(wire.Slots), n)
			select {
			case <-ctx.Done():
				return
			case <-time.After(*every):
			}
		}
	}()

	<-ctx.Done()
	fmt.Println()
	log.Print("dgs-backend: shutting down")
	srv.Close()
}
