package dgs

import (
	"context"
	"testing"
	"time"
)

// tiny shrinks a run so facade tests stay fast.
func tiny() Options {
	return Options{
		Days:       1,
		Satellites: 8,
		Stations:   20,
		ClearSky:   true,
		Step:       2 * time.Minute,
	}
}

func TestSystemString(t *testing.T) {
	if SystemBaseline.String() != "Baseline" || SystemDGS.String() != "DGS" ||
		SystemDGS25.String() != "DGS(25%)" {
		t.Fatal("system names wrong")
	}
	if System(9).String() == "" {
		t.Fatal("unknown system must still print")
	}
}

func TestConfigSystems(t *testing.T) {
	for _, sys := range []System{SystemBaseline, SystemDGS, SystemDGS25} {
		cfg, err := Config(sys, tiny())
		if err != nil {
			t.Fatalf("%v: %v", sys, err)
		}
		if len(cfg.TLEs) != 8 {
			t.Fatalf("%v: %d satellites", sys, len(cfg.TLEs))
		}
		switch sys {
		case SystemBaseline:
			if cfg.Hybrid || len(cfg.Stations) != 5 {
				t.Fatalf("baseline config wrong: hybrid=%v stations=%d", cfg.Hybrid, len(cfg.Stations))
			}
		case SystemDGS:
			if !cfg.Hybrid || len(cfg.Stations) != 20 {
				t.Fatalf("dgs config wrong: hybrid=%v stations=%d", cfg.Hybrid, len(cfg.Stations))
			}
		case SystemDGS25:
			if !cfg.Hybrid || len(cfg.Stations) != 5 {
				t.Fatalf("dgs25 config wrong: hybrid=%v stations=%d", cfg.Hybrid, len(cfg.Stations))
			}
		}
	}
	if _, err := Config(System(42), tiny()); err == nil {
		t.Fatal("unknown system accepted")
	}
}

func TestConfigValueAndMatcherValidation(t *testing.T) {
	opt := tiny()
	opt.Value = "bogus"
	if _, err := Config(SystemDGS, opt); err == nil {
		t.Fatal("bogus value function accepted")
	}
	opt = tiny()
	opt.Matcher = "bogus"
	if _, err := Config(SystemDGS, opt); err == nil {
		t.Fatal("bogus matcher accepted")
	}
	for _, v := range []ValueName{ValueLatency, ValueThroughput} {
		opt = tiny()
		opt.Value = v
		if _, err := Config(SystemDGS, opt); err != nil {
			t.Fatalf("%v: %v", v, err)
		}
	}
	for _, m := range []MatcherName{MatchStable, MatchOptimal, MatchGreedy} {
		opt = tiny()
		opt.Matcher = m
		if _, err := Config(SystemDGS, opt); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
	}
}

func TestRunTinyDGS(t *testing.T) {
	res, err := Run(context.Background(), SystemDGS, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if res.GeneratedGB <= 0 || res.DeliveredGB <= 0 {
		t.Fatalf("generated %.1f delivered %.1f", res.GeneratedGB, res.DeliveredGB)
	}
	if res.BacklogGB.N() != 8 {
		t.Fatalf("backlog samples %d, want one per satellite", res.BacklogGB.N())
	}
}

func TestPopulationBeams(t *testing.T) {
	opt := tiny()
	opt.Beams = 3
	_, net := Population(opt)
	for _, gs := range net {
		if gs.Capacity() != 3 {
			t.Fatalf("beams not applied: %d", gs.Capacity())
		}
	}
}

func TestRunSeeds(t *testing.T) {
	opt := tiny()
	opt.Days = 1
	res, err := RunSeeds(context.Background(), SystemDGS, opt, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerSeed) != 3 || len(res.LatencyMedians) != 3 {
		t.Fatalf("got %d seeds", len(res.PerSeed))
	}
	// Different seeds produce different populations: results should not be
	// bit-identical across all three.
	same := res.LatencyMedians[0] == res.LatencyMedians[1] &&
		res.LatencyMedians[1] == res.LatencyMedians[2]
	if same && res.PerSeed[0].DeliveredGB == res.PerSeed[1].DeliveredGB {
		t.Error("all seeds produced identical results")
	}
	if _, err := RunSeeds(context.Background(), SystemDGS, opt, 0); err == nil {
		t.Error("zero seeds accepted")
	}
}
