# DGS reproduction — build/test/bench entry points.

.PHONY: all build test ci bench race serve federate bench-epoch bench-optimize

all: build

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./internal/sim ./internal/core ./internal/pool ./internal/poscache ./internal/linkbudget

ci:
	./ci.sh

# serve runs the HTTP query API over the paper's full population on the
# default port; see README "Querying the network over HTTP".
serve:
	go run ./cmd/dgs-api

# federate runs the same API as a sharded fleet: two dgs-shard backends
# each owning half the constellation plus a merging front tier on :8045.
# Ctrl-C tears all three down; see README "Sharding the control plane".
federate:
	go build -o bin/dgs-shard ./cmd/dgs-shard
	go build -o bin/dgs-api ./cmd/dgs-api
	@trap 'kill 0' INT TERM EXIT; \
	bin/dgs-shard -listen 127.0.0.1:9050 -shard 0 -shards 2 & \
	bin/dgs-shard -listen 127.0.0.1:9051 -shard 1 -shards 2 & \
	sleep 1; \
	bin/dgs-api -listen 127.0.0.1:8045 -shards 127.0.0.1:9050,127.0.0.1:9051 & \
	wait

# bench records the perf trajectory: wall-clock (ns/op) plus each figure
# bench's headline metrics, written to BENCH_sim.json. The file keeps a
# "baseline" snapshot (the serial pre-pipeline numbers) next to "current"
# so future PRs can compare. Includes the 2-day 10k×500 mega sim, so a
# full run takes tens of minutes.
bench:
	( go test -run '^$$' -bench 'BenchmarkFig3aBacklog|BenchmarkFig2StationMap|BenchmarkMegaScale|BenchmarkMegaSim' -benchmem -timeout 60m . ; \
	  go test -run '^$$' -bench 'BenchmarkEpochSwap' -benchmem -timeout 30m ./internal/core ; \
	  go test -run '^$$' -bench 'BenchmarkOptimizeGreedy' -benchmem -timeout 30m ./internal/optimize ) \
		| tee /dev/stderr \
		| go run ./tools/benchjson -o BENCH_sim.json

# bench-epoch refreshes only the incremental-replan (epoch swap) benches
# in BENCH_sim.json, preserving every other recorded result (-merge).
bench-epoch:
	go test -run '^$$' -bench 'BenchmarkEpochSwap' -benchmem -timeout 30m ./internal/core \
		| tee /dev/stderr \
		| go run ./tools/benchjson -merge -o BENCH_sim.json

# bench-optimize refreshes only the network-design search bench (one full
# greedy K=2 run over a 4-candidate instance: optimizer speed IS sim
# speed), preserving every other recorded result (-merge).
bench-optimize:
	go test -run '^$$' -bench 'BenchmarkOptimizeGreedy' -benchmem -timeout 30m ./internal/optimize \
		| tee /dev/stderr \
		| go run ./tools/benchjson -merge -o BENCH_sim.json
