// Package dgs is the public facade of the DGS reproduction: one-call
// construction and execution of the paper's evaluation systems (§4).
//
//	res, err := dgs.Run(ctx, dgs.SystemDGS, dgs.Options{Days: 2})
//
// The three systems of Fig. 3:
//
//   - SystemBaseline — 5 high-end centralized stations (6 channels, 4 m
//     dishes, ~10× a DGS node's median throughput), closed-loop rate
//     selection, immediate acks.
//   - SystemDGS — 173 distributed low-complexity stations, ~10% of them
//     transmit-capable, forecast-driven rate selection, ack relay through
//     TX stations.
//   - SystemDGS25 — the same network cut to 25% of its stations.
//
// Everything underneath (SGP4, ITU-R models, DVB-S2, weather, matching,
// simulation) lives in internal/ packages; this package wires them together
// with the paper's parameters as defaults.
package dgs

import (
	"context"
	"fmt"
	"time"

	"dgs/internal/core"
	"dgs/internal/dataset"
	"dgs/internal/match"
	"dgs/internal/sim"
	"dgs/internal/station"
	"dgs/internal/tle"
)

// System selects one of the paper's evaluated configurations.
type System int

// The systems compared in Fig. 3.
const (
	// SystemBaseline is the centralized high-end network.
	SystemBaseline System = iota
	// SystemDGS is the full 173-station distributed hybrid network.
	SystemDGS
	// SystemDGS25 is DGS restricted to 25% of its stations.
	SystemDGS25
)

// String implements fmt.Stringer.
func (s System) String() string {
	switch s {
	case SystemBaseline:
		return "Baseline"
	case SystemDGS:
		return "DGS"
	case SystemDGS25:
		return "DGS(25%)"
	default:
		return fmt.Sprintf("System(%d)", int(s))
	}
}

// ValueName selects the paper's Φ variants by name.
type ValueName string

// Value function names (Fig. 3c).
const (
	// ValueLatency is Φ(x,t)=t (default).
	ValueLatency ValueName = "latency"
	// ValueThroughput is Φ(x,t)=|x|.
	ValueThroughput ValueName = "throughput"
)

// MatcherName selects the matching algorithm.
type MatcherName string

// Matching algorithm names (§3.1 and the ablation).
const (
	// MatchStable is the paper's Gale-Shapley choice (default).
	MatchStable MatcherName = "stable"
	// MatchOptimal is max-weight (Hungarian) matching.
	MatchOptimal MatcherName = "optimal"
	// MatchGreedy is the greedy heuristic.
	MatchGreedy MatcherName = "greedy"
)

// Options tunes a run. The zero value reproduces the paper's setup at
// 2-day scale.
type Options struct {
	// Days is the simulated duration (default 2).
	Days int
	// Satellites and Stations resize the populations (defaults 259/173).
	Satellites, Stations int
	// Walker replaces the paper's EO satellite mix with a deterministic
	// Walker-delta shell of Satellites members (53°, 550 km) — the
	// mega-constellation harness population.
	Walker bool
	// Seed drives population synthesis and weather.
	Seed int64
	// Value picks Φ (default ValueLatency).
	Value ValueName
	// Matcher picks the matching algorithm (default MatchStable).
	Matcher MatcherName
	// ForecastErr is the saturated forecast error fraction (default 0.3).
	ForecastErr float64
	// ClearSky disables weather (ablation).
	ClearSky bool
	// TxFraction is the share of TX-capable DGS stations (default 0.1).
	TxFraction float64
	// Beams gives every DGS station this many simultaneous links
	// (beamforming extension, §3.3). Zero means 1.
	Beams int
	// GenGBPerDay is per-satellite capture volume (default 100 GB).
	GenGBPerDay float64
	// Step, PlanEvery, PlanHorizon override simulator timing when nonzero.
	Step, PlanEvery, PlanHorizon time.Duration
	// DaylightImaging gates capture on sunlight (EO realism extension).
	DaylightImaging bool
	// EventsPerSatPerDay injects high-priority event captures (floods,
	// fires) whose latency is tracked separately.
	EventsPerSatPerDay float64
	// Workers bounds the planning/propagation worker pool (0 =
	// GOMAXPROCS). Results are identical for any worker count.
	Workers int
	// Observers subscribe to simulation events (sim.EventRecorder,
	// sim.ContactTrace, or custom instrumentation). Observers never change
	// the Result.
	Observers []sim.Observer
	// Progress, when set, receives per-day callbacks.
	Progress func(day int, r *sim.Result)
}

func (o Options) withDefaults() Options {
	if o.Days == 0 {
		o.Days = 2
	}
	if o.Satellites == 0 {
		o.Satellites = 259
	}
	if o.Stations == 0 {
		o.Stations = 173
	}
	if o.Value == "" {
		o.Value = ValueLatency
	}
	if o.Matcher == "" {
		o.Matcher = MatchStable
	}
	if o.ForecastErr == 0 {
		o.ForecastErr = 0.3
	}
	if o.TxFraction == 0 {
		o.TxFraction = 0.1
	}
	if o.GenGBPerDay == 0 {
		o.GenGBPerDay = 100
	}
	return o
}

// Start is the canonical simulation start used throughout.
var Start = time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC)

// Population returns the synthetic constellation and DGS network an Options
// describes.
func Population(opt Options) ([]tle.TLE, station.Network) {
	opt = opt.withDefaults()
	var tles []tle.TLE
	if opt.Walker {
		tles = dataset.Walker(dataset.WalkerOptions{T: opt.Satellites, Epoch: Start})
	} else {
		tles = dataset.Satellites(dataset.SatelliteOptions{N: opt.Satellites, Seed: opt.Seed + 1, Epoch: Start})
	}
	net := dataset.Stations(dataset.StationOptions{
		N: opt.Stations, Seed: opt.Seed + 2, TxFraction: opt.TxFraction,
	})
	if opt.Beams > 1 {
		for _, gs := range net {
			gs.Beams = opt.Beams
		}
	}
	return tles, net
}

// valueFunc materializes a ValueName.
func valueFunc(v ValueName) (core.ValueFunc, error) {
	switch v {
	case ValueLatency, "":
		return core.LatencyValue{}, nil
	case ValueThroughput:
		return core.ThroughputValue{}, nil
	default:
		return nil, fmt.Errorf("dgs: unknown value function %q", v)
	}
}

// matcherFunc materializes a MatcherName. The default stable matcher maps
// to nil: sim.Config documents nil as stable matching, and leaving Match
// unset lets the scheduler use its allocation-free warm-started matching
// scratch (an explicit Matcher function is treated as opaque and called
// per slot).
func matcherFunc(m MatcherName) (core.Matcher, error) {
	switch m {
	case MatchStable, "":
		return nil, nil
	case MatchOptimal:
		return match.MaxWeight, nil
	case MatchGreedy:
		return match.Greedy, nil
	default:
		return nil, fmt.Errorf("dgs: unknown matcher %q", m)
	}
}

// Config builds the simulator configuration for a system without running it.
func Config(sys System, opt Options) (sim.Config, error) {
	opt = opt.withDefaults()
	vf, err := valueFunc(opt.Value)
	if err != nil {
		return sim.Config{}, err
	}
	mf, err := matcherFunc(opt.Matcher)
	if err != nil {
		return sim.Config{}, err
	}
	tles, net := Population(opt)

	cfg := sim.Config{
		Start:         Start,
		Duration:      time.Duration(opt.Days) * 24 * time.Hour,
		Step:          opt.Step,
		PlanEvery:     opt.PlanEvery,
		PlanHorizon:   opt.PlanHorizon,
		TLEs:          tles,
		Value:         vf,
		Matcher:       mf,
		WeatherSeed:   uint64(opt.Seed) + 7,
		ClearSky:      opt.ClearSky,
		ForecastErr:   opt.ForecastErr,
		GenBitsPerDay: opt.GenGBPerDay * sim.GB,
		Observers:     opt.Observers,
		Progress:      opt.Progress,

		DaylightImaging:    opt.DaylightImaging,
		EventsPerSatPerDay: opt.EventsPerSatPerDay,
		Workers:            opt.Workers,
	}
	switch sys {
	case SystemBaseline:
		cfg.Stations = dataset.BaselineStations()
		cfg.Hybrid = false
	case SystemDGS:
		cfg.Stations = net
		cfg.Hybrid = true
	case SystemDGS25:
		cfg.Stations = net.Subset(0.25, opt.Seed+3)
		cfg.Hybrid = true
	default:
		return sim.Config{}, fmt.Errorf("dgs: unknown system %v", sys)
	}
	return cfg, nil
}

// Run executes one system and returns its result distributions. ctx
// cancels the run at the next slot boundary; multi-day runs can therefore
// be given deadlines or interrupted on SIGINT without corrupting state.
func Run(ctx context.Context, sys System, opt Options) (*sim.Result, error) {
	cfg, err := Config(sys, opt)
	if err != nil {
		return nil, err
	}
	return sim.Run(ctx, cfg)
}

// SeedsResult aggregates a multi-seed study of one system.
type SeedsResult struct {
	// PerSeed holds each seed's result in seed order.
	PerSeed []*sim.Result
	// LatencyMedians and BacklogMedians collect the per-seed medians, the
	// quantities whose spread expresses run-to-run variance.
	LatencyMedians, BacklogMedians []float64
}

// RunSeeds executes a system across n seeds (population and weather both
// vary) for confidence-interval reporting. Seeds run sequentially and ctx
// is honored both between seeds and at every slot boundary within one; use
// small Options for wide sweeps.
func RunSeeds(ctx context.Context, sys System, opt Options, n int) (*SeedsResult, error) {
	if n < 1 {
		return nil, fmt.Errorf("dgs: need at least one seed")
	}
	out := &SeedsResult{}
	for k := 0; k < n; k++ {
		o := opt
		o.Seed = opt.Seed + int64(k)*1000
		res, err := Run(ctx, sys, o)
		if err != nil {
			return nil, fmt.Errorf("dgs: seed %d: %w", k, err)
		}
		out.PerSeed = append(out.PerSeed, res)
		out.LatencyMedians = append(out.LatencyMedians, res.LatencyMin.Median())
		out.BacklogMedians = append(out.BacklogMedians, res.BacklogGB.Median())
	}
	return out, nil
}
