package dgs

import (
	"context"
	"testing"
	"time"

	"dgs/internal/core"
	"dgs/internal/linkbudget"
	"dgs/internal/orbit"
	"dgs/internal/passes"
	"dgs/internal/poscache"
	"dgs/internal/sgp4"
	"dgs/internal/sim"
)

// The mega-scale benches measure the constellation hot path far beyond the
// paper's 259×173 population: a Walker-delta shell against a dense ground
// network, where the sat × station cross product — not any single model —
// dominates. They record the spatial candidate index and the batch SoA
// propagation working together; flip passes.Config.FullScan or
// poscache.Cache.NoBatch locally to measure either ablated.

// megaProps builds Walker-shell propagators for n satellites.
func megaProps(b *testing.B, n int) []orbit.Propagator {
	b.Helper()
	tles, _ := Population(Options{Walker: true, Satellites: n})
	props := make([]orbit.Propagator, 0, len(tles))
	for _, el := range tles {
		p, err := sgp4.New(el)
		if err != nil {
			b.Fatal(err)
		}
		props = append(props, p)
	}
	return props
}

// BenchmarkMegaScalePasses measures contact-window prediction at
// mega-constellation scale: 10,000 Walker satellites × 500 stations over a
// 15-minute horizon. pct-candidates is the share of the sat × station
// cross product the spatial index let through to exact evaluation (the
// acceptance bar in internal/passes holds it under 10%).
func BenchmarkMegaScalePasses(b *testing.B) {
	props := megaProps(b, 10000)
	_, net := Population(Options{Walker: true, Satellites: 10000, Stations: 500})
	b.ResetTimer()
	var nWin int
	var st passes.Stats
	for i := 0; i < b.N; i++ {
		pred := passes.New(poscache.New(props), net, passes.Config{})
		ws := pred.WindowsBetween(nil, Start, Start.Add(15*time.Minute))
		nWin = len(ws)
		st = pred.Stats()
	}
	b.ReportMetric(float64(nWin), "windows")
	b.ReportMetric(100*float64(st.CandidatePairs)/float64(st.CrossPairs), "pct-candidates")
}

// BenchmarkMegaSim2Day runs the complete simulator — propagation, pass
// prediction, weather, per-slot link evaluation, matching, downlink
// drain — for 2 simulated days of a 10,000-satellite Walker shell over
// 500 stations: the ROADMAP's "2-day sim of 10k sats in minutes" target,
// exercised end to end rather than per stage. The timing grid is scaled
// with the population (4-minute slots, hourly plans over a 2 h horizon)
// and the capture volume is held at 5 GB/day per satellite so backlog
// chunk state stays bounded; the delivered-TB metric pins the workload
// so a speedup that silently drops work is caught by the recording diff.
func BenchmarkMegaSim2Day(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := Run(context.Background(), SystemDGS, Options{
			Days:        2,
			Walker:      true,
			Satellites:  10000,
			Stations:    500,
			GenGBPerDay: 5,
			Step:        4 * time.Minute,
			PlanEvery:   time.Hour,
			PlanHorizon: 2 * time.Hour,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.DeliveredGB/1e3, "delivered-TB")
	}
}

// BenchmarkMegaScalePlan measures one full scheduler planning epoch — pass
// prediction, per-slot link evaluation, matching, and drain — for a 2,000
// satellite Walker shell × 500 stations over a one-hour horizon.
func BenchmarkMegaScalePlan(b *testing.B) {
	props := megaProps(b, 2000)
	_, net := Population(Options{Walker: true, Satellites: 2000, Stations: 500})
	snaps := make([]core.SatSnapshot, len(props))
	for i, p := range props {
		snaps[i] = core.SatSnapshot{Prop: p, PendingBits: 40e9, OldestAge: time.Hour}
	}
	genRate := 100 * sim.GB / 86400.0
	b.ResetTimer()
	var assigned int
	for i := 0; i < b.N; i++ {
		s := &core.Scheduler{Radio: linkbudget.DefaultRadio(), Stations: net}
		plan := s.PlanEpoch(snaps, Start, time.Hour, time.Minute, genRate)
		assigned = 0
		for sat := range snaps {
			assigned += plan.AssignedSlotCount(sat)
		}
	}
	b.ReportMetric(float64(assigned), "slots-assigned")
}
