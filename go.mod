module dgs

go 1.24
