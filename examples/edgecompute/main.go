// Edgecompute: the §3.3 extension — edge compute on the ground station.
// A DGS node receives a pass worth of imagery, runs an edge pipeline that
// shrinks bulk tiles and fast-tracks a flood-alert product, and uploads
// over a constrained home-broadband backhaul. Compare cloud-arrival times
// against naive raw streaming (the VERGE [26] model).
package main

import (
	"fmt"
	"log"
	"time"

	"dgs/internal/edge"
)

func main() {
	start := time.Date(2020, 6, 1, 12, 0, 0, 0, time.UTC)
	const uplink = 50e6 // 50 Mbps home broadband

	// A 7-minute pass at ~150 Mbps delivers ~63 Gb of raw tiles.
	type rx struct {
		id       uint64
		bits     float64
		priority float64
		label    string
	}
	pass := []rx{
		{1, 20e9, 0, "bulk imagery A"},
		{2, 20e9, 0, "bulk imagery B"},
		{3, 2e9, 5, "flood-alert tiles"}, // latency-sensitive
		{4, 20e9, 0, "bulk imagery C"},
	}

	run := func(name string, proc edge.Processor) {
		b, err := edge.NewBackhaul(uplink, proc)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range pass {
			b.Enqueue(7, r.id, r.bits, r.priority, start)
		}
		fmt.Printf("%s (reduction %.0f%%, %v processing):\n", name, proc.Reduction*100, proc.Latency)
		for _, d := range b.Drain(start.Add(24 * time.Hour)) {
			var label string
			for _, r := range pass {
				if r.id == d.Product.ChunkID {
					label = r.label
				}
			}
			fmt.Printf("  %-18s in cloud after %6.1f min\n", label, d.CloudAt.Sub(start).Minutes())
		}
		fmt.Println()
	}

	run("raw streaming", edge.Processor{Reduction: 1})
	run("edge pipeline", edge.Processor{Reduction: 0.3, Latency: 30 * time.Second})

	fmt.Println("edge compute delivers the flood alert in minutes and cuts total backhaul 3x —")
	fmt.Println("without discarding anything in orbit (contrast with satellite pre-filtering [8])")
}
