// Constellation: run the paper's core comparison at laptop scale — a
// distributed hybrid DGS network versus the centralized 5-station baseline
// for a 40-satellite Earth-observation constellation — and print the
// backlog and latency summaries of Fig. 3a/3b.
package main

import (
	"context"
	"fmt"
	"log"

	"dgs"
	"dgs/internal/metrics"
)

func main() {
	ctx := context.Background()
	opt := dgs.Options{
		Days:        1,
		Satellites:  40,
		Stations:    80,
		GenGBPerDay: 40, // scale capture volume with the population
		Seed:        7,
	}

	fmt.Println("running the three systems of Fig. 3 (scaled to 40 satellites)…")
	var rows []struct {
		Label string
		S     metrics.Summary
	}
	var backlogRows []struct {
		Label string
		S     metrics.Summary
	}
	for _, sys := range []dgs.System{dgs.SystemBaseline, dgs.SystemDGS, dgs.SystemDGS25} {
		res, err := dgs.Run(ctx, sys, opt)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, struct {
			Label string
			S     metrics.Summary
		}{sys.String(), res.LatencyMin.Summarize()})
		backlogRows = append(backlogRows, struct {
			Label string
			S     metrics.Summary
		}{sys.String(), res.BacklogGB.Summarize()})
		fmt.Printf("  %v: delivered %.0f of %.0f GB\n", sys, res.DeliveredGB, res.GeneratedGB)
	}

	fmt.Println("\ncapture→delivery latency (minutes):")
	fmt.Print(metrics.Table(rows))
	fmt.Println("\nper-satellite daily backlog (GB):")
	fmt.Print(metrics.Table(backlogRows))
	fmt.Println("\n(the paper's full-scale shape: DGS ≈ 5x better than the baseline on both)")
}
