// Quickstart: propagate a real satellite with the SGP4 port, predict its
// passes over a ground station, and estimate the DVB-S2 downlink rate a
// low-complexity DGS node would achieve at culmination — the three building
// blocks of the DGS scheduler in ~60 lines.
package main

import (
	"fmt"
	"log"
	"time"

	"dgs/internal/dataset"
	"dgs/internal/frames"
	"dgs/internal/linkbudget"
	"dgs/internal/orbit"
	"dgs/internal/sgp4"
	"dgs/internal/tle"
)

func main() {
	// 1. Parse a TLE (the embedded ISS fixture) and initialize SGP4.
	el, err := tle.Parse(dataset.RealTLEs()[1])
	if err != nil {
		log.Fatal(err)
	}
	prop, err := sgp4.New(el)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %.1f min period, ~%.0f km altitude\n",
		el.Name, el.PeriodMinutes(), (el.ApogeeKm()+el.PerigeeKm())/2)

	// 2. Where is it right now (relative to its epoch)?
	sub, err := prop.SubPoint(el.Epoch.Add(45 * time.Minute))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sub-satellite point 45 min after epoch: %s\n\n", sub)

	// 3. Predict a day of passes over a mid-latitude DGS node.
	zurich := frames.NewGeodeticDeg(47.37, 8.54, 0.4)
	passes, err := orbit.Passes(prop, zurich, el.Epoch, 24*time.Hour, orbit.PassOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("passes over Zurich in 24 h: %d\n", len(passes))

	// 4. For each pass, estimate what a 1 m DGS dish could receive.
	radio := linkbudget.DefaultRadio()
	node := linkbudget.DGSTerminal()
	for i, p := range passes {
		o, err := orbit.Observe(prop, zurich, p.Culmination)
		if err != nil {
			log.Fatal(err)
		}
		geo := linkbudget.Geometry{
			RangeKm:       o.Look.RangeKm,
			ElevationRad:  o.Look.ElevationRad,
			StationLatRad: zurich.LatRad,
		}
		clear := linkbudget.RateBps(radio, node, geo, linkbudget.Conditions{})
		rain := linkbudget.RateBps(radio, node, geo, linkbudget.Conditions{RainMmH: 10})
		fmt.Printf("  pass %d: %5.1f min, max el %4.1f°, rate %6.1f Mbps clear / %6.1f Mbps in 10 mm/h rain\n",
			i+1, p.Duration().Minutes(), p.MaxElevationDeg(), clear/1e6, rain/1e6)
	}
}
