// Valuefunction: demonstrate the paper's Φ adaptability (§3.1, Fig. 3c) —
// the same network scheduled for latency, for throughput, and with a custom
// geographic SLA boost that prioritizes stations in a disaster region.
package main

import (
	"context"
	"fmt"
	"log"

	"dgs"
	"dgs/internal/astro"
	"dgs/internal/core"
	"dgs/internal/sim"
)

func main() {
	ctx := context.Background()
	base := dgs.Options{
		Days:        1,
		Satellites:  30,
		Stations:    60,
		GenGBPerDay: 30,
		Seed:        3,
	}

	// 1 & 2: the built-in Φ variants by name.
	for _, v := range []dgs.ValueName{dgs.ValueLatency, dgs.ValueThroughput} {
		opt := base
		opt.Value = v
		res, err := dgs.Run(ctx, dgs.SystemDGS, opt)
		if err != nil {
			log.Fatal(err)
		}
		s := res.LatencyMin.Summarize()
		fmt.Printf("Φ=%-11s latency median %6.1f min, p90 %6.1f, p99 %6.1f | delivered %.0f GB\n",
			v, s.Median, s.P90, s.P99, res.DeliveredGB)
	}

	// 3: a custom Φ via the simulator config — boost links through European
	// stations 5x, as an operator with an SLA for flood imagery over Europe
	// would (the paper's "prioritize data based on geography").
	cfg, err := dgs.Config(dgs.SystemDGS, base)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Value = core.GeographicValue{
		Inner:     core.LatencyValue{},
		LatMinRad: 36 * astro.Deg2Rad, LatMaxRad: 62 * astro.Deg2Rad,
		LonMinRad: -10 * astro.Deg2Rad, LonMaxRad: 30 * astro.Deg2Rad,
		Boost: 5,
	}
	res, err := sim.Run(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}
	s := res.LatencyMin.Summarize()
	fmt.Printf("Φ=geo(latency) latency median %6.1f min, p90 %6.1f, p99 %6.1f | delivered %.0f GB\n",
		s.Median, s.P90, s.P99, res.DeliveredGB)

	fmt.Println("\nvalue functions reshape the schedule without touching any other code")
}
