// Ackrelay: demonstrate the paper's ack-free downlink (§3.3) end to end
// over real TCP sockets on loopback. A receive-only station reports chunks
// it decoded; the backend collates them; a transmit-capable station fetches
// the cumulative ack digest it will upload at the satellite's next pass;
// the satellite's on-board store frees storage only then.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"dgs/internal/backend"
	"dgs/internal/proto"
	"dgs/internal/satellite"
)

func main() {
	// The backend scheduler service.
	srv := backend.NewServer(nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Println("backend listening on", addr)

	// A satellite with 2 GB of captured imagery in 100 MB chunks.
	t0 := time.Now().UTC().Add(-2 * time.Hour)
	store := satellite.NewStore("EO-SAT-007", 0, 0.8e9)
	for i := 0; i < 20; i++ {
		store.AddChunk(t0.Add(time.Duration(i)*5*time.Minute), 0.8e9, 0)
	}
	fmt.Printf("satellite holds %.1f GB pending\n", store.PendingBits()/8e9)

	// Two stations: a receive-only node and a transmit-capable one. Connect
	// (rather than Dial) gives each a managed session: if the link to the
	// backend drops mid-run, the agent redials with backoff, resumes via its
	// report sequence number, and Report still collates exactly once.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rx := &backend.StationAgent{ID: 42, Name: "rx-node"}
	if err := rx.Connect(ctx, addr.String()); err != nil {
		log.Fatal(err)
	}
	defer rx.Close()
	tx := &backend.StationAgent{ID: 7, Name: "tx-node", TxCapable: true}
	if err := tx.Connect(ctx, addr.String()); err != nil {
		log.Fatal(err)
	}
	defer tx.Close()

	// Pass 1: the satellite dumps 1 GB to the receive-only station. The
	// station cannot ack over the air — it relays receipts to the backend.
	sent := store.Transmit(8e9)
	report := &proto.ChunkReport{StationID: 42, Sat: 7}
	now := time.Now().UTC()
	for _, c := range sent {
		report.Chunks = append(report.Chunks, proto.ChunkInfo{
			ID: uint64(c.ID), Bits: uint64(c.Bits), Captured: c.Captured, Received: now,
		})
	}
	if err := rx.Report(report); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rx-node decoded %d chunks and reported them over the Internet\n", len(sent))
	fmt.Printf("satellite still stores %.1f GB — nothing may be discarded before an ack (§3.3)\n",
		store.StoredBits()/8e9)

	// Pass 2 (later, over the TX station): fetch the collated digest and
	// uplink it. Only now does the satellite free storage.
	digest, err := tx.FetchDigest(7)
	if err != nil {
		log.Fatal(err)
	}
	ids := make([]satellite.ChunkID, len(digest.ChunkIDs))
	for i, id := range digest.ChunkIDs {
		ids[i] = satellite.ChunkID(id)
	}
	freed := store.Ack(ids)
	fmt.Printf("tx-node uplinked %d delayed acks; satellite freed %.1f GB\n", len(ids), freed/8e9)
	fmt.Printf("satellite now stores %.1f GB (delivered %.1f GB)\n",
		store.StoredBits()/8e9, store.DeliveredBits()/8e9)

	if err := store.CheckConservation(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("bits-conservation invariant holds: generated = delivered + stored")
}
