#!/bin/sh
# ci.sh — the repo's gate: format, vet, build, full tests, and the race
# run over the packages that host the parallel planning/propagation
# pipeline (load-bearing since the worker pool landed).
set -eu

cd "$(dirname "$0")"

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== importcheck (zero-dependency policy)"
go run ./tools/importcheck

echo "== go build"
go build ./...

echo "== go test"
# -shuffle=on randomizes test order so inter-test state dependencies
# surface in CI instead of in the field.
go test -shuffle=on ./...

echo "== go test -race (parallel pipeline + session + serving layers)"
# The backend/proto/faultnet trio includes the seeded chunk-dedup chaos
# equivalence test — reconnect, resume, and replay-dedup all race-checked.
# serve hosts the HTTP query layer's 40-client mixed-workload storm plus
# the epoch-swap storm: a background writer publishing world updates
# while readers and SSE subscribers race the atomic snapshot swap.
# passes and poscache host the sharded sweep, lockstep refinement, and
# multi-instant cache fill behind the parallel pass-prediction pipeline.
go test -race ./internal/passes ./internal/sim ./internal/core ./internal/pool ./internal/poscache ./internal/linkbudget \
    ./internal/backend ./internal/proto ./internal/faultnet ./internal/serve

echo "== serve smoke (dgs-api + loadgen, live-update round trip)"
# Boot the API on an ephemeral port over a small world, drive it with the
# load generator for ~2s while 4 SSE subscribers hold /v2/plan/stream
# open and live weather updates POST to /v2/updates every 300ms: loadgen
# exits 1 on any transport error, 400, 5xx, or if a subscriber misses the
# initial plan event or every delta (the update -> epoch swap -> SSE
# delta round trip, end to end). Then SIGINT and require a clean
# graceful-shutdown exit — which must drain the open streams too.
smokedir=$(mktemp -d)
trap 'rm -rf "$smokedir"' EXIT
go build -o "$smokedir/dgs-api" ./cmd/dgs-api
go build -o "$smokedir/loadgen" ./tools/loadgen
"$smokedir/dgs-api" -listen 127.0.0.1:0 -sats 16 -stations 12 -max-span 6h > "$smokedir/api.log" 2>&1 &
api_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/.*serving on \([0-9.:]*\).*/\1/p' "$smokedir/api.log")
    [ -n "$addr" ] && break
    sleep 0.2
done
if [ -z "$addr" ]; then
    echo "dgs-api never came up:" >&2
    cat "$smokedir/api.log" >&2
    exit 1
fi
"$smokedir/loadgen" -addr "$addr" -c 8 -d 2s -stream 4 -post-update 300ms
kill -INT "$api_pid"
wait "$api_pid" || { echo "dgs-api did not shut down cleanly:" >&2; cat "$smokedir/api.log" >&2; exit 1; }
grep -q "clean shutdown" "$smokedir/api.log"


echo "== mega smoke (Walker population, spatial index differential)"
# A small Walker shell through the pass predictor with the spatial
# candidate index on and off: the printed windows must be byte-identical
# (the index is a conservative filter, never a behavior change). The
# mega-scale versions of this differential run in the test suite above.
go build -o "$smokedir/dgs-passes" ./cmd/dgs-passes
"$smokedir/dgs-passes" -walker -sats 200 -stations 40 -hours 0.5 -top 1000000 | tail -n +3 > "$smokedir/idx.txt"
"$smokedir/dgs-passes" -walker -sats 200 -stations 40 -hours 0.5 -top 1000000 -full-scan | tail -n +3 > "$smokedir/full.txt"
[ -s "$smokedir/idx.txt" ] || { echo "mega smoke predicted no windows" >&2; exit 1; }
cmp "$smokedir/idx.txt" "$smokedir/full.txt"

echo "== bench trajectory (advisory, recorded BENCH_sim.json)"
# Warns when the recorded current Fig3aBacklog/DGS wall-clock regressed
# more than 10% past the recorded baseline, and likewise for the
# mega-scale benches (pass prediction, planning epoch, 2-day sim);
# refresh the file with `make bench` after perf-relevant changes.
go run ./tools/benchjson -diff -o BENCH_sim.json -bench 'BenchmarkFig3aBacklog/DGS$' -metric ns/op -tol 10 || true
go run ./tools/benchjson -diff -o BENCH_sim.json -bench 'BenchmarkMega(ScalePasses|ScalePlan|Sim2Day)$' -metric ns/op -tol 10 || true
go run ./tools/benchjson -diff -o BENCH_sim.json -bench 'BenchmarkEpochSwap' -metric ns/op -tol 10 || true
echo "CI OK"
