#!/bin/sh
# ci.sh — the repo's gate: format, vet, build, full tests, and the race
# run over the packages that host the parallel planning/propagation
# pipeline (load-bearing since the worker pool landed).
set -eu

cd "$(dirname "$0")"

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== importcheck (zero-dependency policy)"
go run ./tools/importcheck

echo "== go build"
go build ./...

echo "== go test"
# -shuffle=on randomizes test order so inter-test state dependencies
# surface in CI instead of in the field.
go test -shuffle=on ./...

echo "== go test -race (parallel pipeline + session + serving layers)"
# The backend/proto/faultnet trio includes the seeded chunk-dedup chaos
# equivalence test — reconnect, resume, and replay-dedup all race-checked.
# serve hosts the HTTP query layer's 40-client mixed-workload storm plus
# the epoch-swap storm: a background writer publishing world updates
# while readers and SSE subscribers race the atomic snapshot swap.
# passes and poscache host the sharded sweep, lockstep refinement, and
# multi-instant cache fill behind the parallel pass-prediction pipeline.
# spatial and sgp4 sit under every propagation worker; serve now also
# hosts the federation suite (shard sessions, merge rebuilds, and the
# seeded chaos kill/rejoin convergence run). optimize fans whole sim
# runs over the pool with a shared memo cache — the newest racer.
go test -race ./internal/passes ./internal/sim ./internal/core ./internal/pool ./internal/poscache ./internal/linkbudget \
    ./internal/backend ./internal/proto ./internal/faultnet ./internal/serve ./internal/spatial ./internal/sgp4 \
    ./internal/optimize

echo "== serve smoke (dgs-api + loadgen, live-update round trip)"
# Boot the API on an ephemeral port over a small world, drive it with the
# load generator for ~2s while 4 SSE subscribers hold /v2/plan/stream
# open and live weather updates POST to /v2/updates every 300ms: loadgen
# exits 1 on any transport error, 400, 5xx, or if a subscriber misses the
# initial plan event or every delta (the update -> epoch swap -> SSE
# delta round trip, end to end). Then SIGINT and require a clean
# graceful-shutdown exit — which must drain the open streams too.
smokedir=$(mktemp -d)
trap 'rm -rf "$smokedir"' EXIT
go build -o "$smokedir/dgs-api" ./cmd/dgs-api
go build -o "$smokedir/loadgen" ./tools/loadgen
"$smokedir/dgs-api" -listen 127.0.0.1:0 -sats 16 -stations 12 -max-span 6h > "$smokedir/api.log" 2>&1 &
api_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/.*serving on \([0-9.:]*\).*/\1/p' "$smokedir/api.log")
    [ -n "$addr" ] && break
    sleep 0.2
done
if [ -z "$addr" ]; then
    echo "dgs-api never came up:" >&2
    cat "$smokedir/api.log" >&2
    exit 1
fi
"$smokedir/loadgen" -addr "$addr" -c 8 -d 2s -stream 4 -post-update 300ms
kill -INT "$api_pid"
wait "$api_pid" || { echo "dgs-api did not shut down cleanly:" >&2; cat "$smokedir/api.log" >&2; exit 1; }
grep -q "clean shutdown" "$smokedir/api.log"


echo "== federation smoke (2 dgs-shard + front tier vs monolith)"
# Boot two shard backends and a merging front tier over the same small
# world as a monolith dgs-api, then require: (1) the front tier's
# /v1/passes — shard-invariant facts — byte-identical to the monolith's;
# (2) /v2/plan to carry a 2-component epoch vector; (3) a 1-shard fleet's
# /v1/plan byte-identical to the monolith's (the end-to-end merge
# identity). The federated 2-shard plan legitimately differs only where
# stations were contended across the partition boundary.
go build -o "$smokedir/dgs-shard" ./cmd/dgs-shard
world_flags="-sats 16 -stations 12 -max-span 6h -plan-horizon 15m"
wait_addr() { # logfile pattern -> bound addr
    _addr=""
    for _ in $(seq 1 50); do
        _addr=$(sed -n "s/.*$2 \([0-9.:]*\).*/\1/p" "$1")
        [ -n "$_addr" ] && break
        sleep 0.2
    done
    if [ -z "$_addr" ]; then
        echo "$1 never came up:" >&2; cat "$1" >&2; exit 1
    fi
    echo "$_addr"
}
# shellcheck disable=SC2086
"$smokedir/dgs-api" -listen 127.0.0.1:0 $world_flags > "$smokedir/mono.log" 2>&1 &
mono_pid=$!
# shellcheck disable=SC2086
"$smokedir/dgs-shard" -listen 127.0.0.1:0 -shard 0 -shards 2 $world_flags > "$smokedir/shard0.log" 2>&1 &
shard0_pid=$!
# shellcheck disable=SC2086
"$smokedir/dgs-shard" -listen 127.0.0.1:0 -shard 1 -shards 2 $world_flags > "$smokedir/shard1.log" 2>&1 &
shard1_pid=$!
mono_addr=$(wait_addr "$smokedir/mono.log" "serving on")
shard0_addr=$(wait_addr "$smokedir/shard0.log" "satellites) on")
shard1_addr=$(wait_addr "$smokedir/shard1.log" "satellites) on")
"$smokedir/dgs-api" -listen 127.0.0.1:0 -shards "$shard0_addr,$shard1_addr" > "$smokedir/front2.log" 2>&1 &
front2_pid=$!
front2_addr=$(wait_addr "$smokedir/front2.log" "serving on")
curl -sf "http://$front2_addr/v1/passes?hours=2" > "$smokedir/fed_passes.json"
curl -sf "http://$mono_addr/v1/passes?hours=2" > "$smokedir/mono_passes.json"
cmp "$smokedir/fed_passes.json" "$smokedir/mono_passes.json"
curl -sf "http://$front2_addr/v2/plan" | grep -q '"epoch_vector":\[[0-9]*,[0-9]*\]' \
    || { echo "front tier /v2/plan missing 2-component epoch vector" >&2; exit 1; }
"$smokedir/loadgen" -addr "$front2_addr" -c 4 -d 1s -shards 2
kill -INT "$front2_pid"; wait "$front2_pid" || { cat "$smokedir/front2.log" >&2; exit 1; }
# 1-shard fleet: the federated plan must be byte-identical to the monolith.
# shellcheck disable=SC2086
"$smokedir/dgs-shard" -listen 127.0.0.1:0 -shard 0 -shards 1 $world_flags > "$smokedir/shard_solo.log" 2>&1 &
solo_pid=$!
solo_addr=$(wait_addr "$smokedir/shard_solo.log" "satellites) on")
"$smokedir/dgs-api" -listen 127.0.0.1:0 -shards "$solo_addr" > "$smokedir/front1.log" 2>&1 &
front1_pid=$!
front1_addr=$(wait_addr "$smokedir/front1.log" "serving on")
curl -sf "http://$front1_addr/v1/plan?hours=0.25" > "$smokedir/fed_plan.json"
curl -sf "http://$mono_addr/v1/plan?hours=0.25" > "$smokedir/mono_plan.json"
cmp "$smokedir/fed_plan.json" "$smokedir/mono_plan.json"
kill -INT "$front1_pid"; wait "$front1_pid" || { cat "$smokedir/front1.log" >&2; exit 1; }
kill "$solo_pid" "$shard0_pid" "$shard1_pid" "$mono_pid" 2>/dev/null || true
wait "$solo_pid" "$shard0_pid" "$shard1_pid" "$mono_pid" 2>/dev/null || true

echo "== mega smoke (Walker population, spatial index differential)"
# A small Walker shell through the pass predictor with the spatial
# candidate index on and off: the printed windows must be byte-identical
# (the index is a conservative filter, never a behavior change). The
# mega-scale versions of this differential run in the test suite above.
go build -o "$smokedir/dgs-passes" ./cmd/dgs-passes
"$smokedir/dgs-passes" -walker -sats 200 -stations 40 -hours 0.5 -top 1000000 | tail -n +3 > "$smokedir/idx.txt"
"$smokedir/dgs-passes" -walker -sats 200 -stations 40 -hours 0.5 -top 1000000 -full-scan | tail -n +3 > "$smokedir/full.txt"
[ -s "$smokedir/idx.txt" ] || { echo "mega smoke predicted no windows" >&2; exit 1; }
cmp "$smokedir/idx.txt" "$smokedir/full.txt"

echo "== optimizer smoke (greedy determinism + /v2/optimize round trip)"
# (1) dgs-optimize on a tiny N=6/K=2 instance: the winning set — the
# whole stdout report, in fact — must be byte-identical across
# -workers 1, -workers 4, and a repeated run (worker count may only
# change wall time, never the answer).
go build -o "$smokedir/dgs-optimize" ./cmd/dgs-optimize
opt_flags="-sats 8 -stations 6 -candidates 2,3,4,5 -k 2 -horizon 4h -warmup 1h -q"
# shellcheck disable=SC2086
"$smokedir/dgs-optimize" $opt_flags -workers 1 > "$smokedir/opt_w1.txt" 2>/dev/null
# shellcheck disable=SC2086
"$smokedir/dgs-optimize" $opt_flags -workers 4 > "$smokedir/opt_w4.txt" 2>/dev/null
# shellcheck disable=SC2086
"$smokedir/dgs-optimize" $opt_flags -workers 4 > "$smokedir/opt_w4b.txt" 2>/dev/null
cmp "$smokedir/opt_w1.txt" "$smokedir/opt_w4.txt"
cmp "$smokedir/opt_w4.txt" "$smokedir/opt_w4b.txt"
grep -q '^selected      \[2 5\]$' "$smokedir/opt_w1.txt" \
    || { echo "dgs-optimize picked an unexpected winning set:" >&2; cat "$smokedir/opt_w1.txt" >&2; exit 1; }
# (2) the async jobs API: POST /v2/optimize, watch the SSE stream until
# the job completes (status snapshot, live progress events, the stage
# report, and the final done event), then GET the terminal status.
"$smokedir/dgs-api" -listen 127.0.0.1:0 -sats 16 -stations 12 -max-span 6h > "$smokedir/opt_api.log" 2>&1 &
opt_api_pid=$!
opt_addr=$(wait_addr "$smokedir/opt_api.log" "serving on")
job=$(curl -sf -X POST "http://$opt_addr/v2/optimize" \
    -d '{"k":2,"candidates":[8,9,10],"horizon_hours":1.0,"warmup_hours":0.5}' \
    | sed 's/.*"job":"\([^"]*\)".*/\1/')
[ -n "$job" ] || { echo "POST /v2/optimize returned no job id" >&2; exit 1; }
curl -sfN --max-time 120 "http://$opt_addr/v2/optimize/$job/stream" > "$smokedir/opt_stream.txt"
for ev in progress report done; do
    grep -q "^event: $ev" "$smokedir/opt_stream.txt" \
        || { echo "SSE stream missing $ev event:" >&2; cat "$smokedir/opt_stream.txt" >&2; exit 1; }
done
curl -sf "http://$opt_addr/v2/optimize/$job" | grep -q '"status":"done"' \
    || { echo "GET /v2/optimize/$job not done" >&2; exit 1; }
kill -INT "$opt_api_pid"
wait "$opt_api_pid" || { echo "dgs-api did not shut down cleanly:" >&2; cat "$smokedir/opt_api.log" >&2; exit 1; }

echo "== bench trajectory (advisory, recorded BENCH_sim.json)"
# Warns when the recorded current Fig3aBacklog/DGS wall-clock regressed
# more than 10% past the recorded baseline, and likewise for the
# mega-scale benches (pass prediction, planning epoch, 2-day sim);
# refresh the file with `make bench` after perf-relevant changes.
go run ./tools/benchjson -diff -o BENCH_sim.json -bench 'BenchmarkFig3aBacklog/DGS$' -metric ns/op -tol 10 || true
go run ./tools/benchjson -diff -o BENCH_sim.json -bench 'BenchmarkMega(ScalePasses|ScalePlan|Sim2Day)$' -metric ns/op -tol 10 || true
go run ./tools/benchjson -diff -o BENCH_sim.json -bench 'BenchmarkEpochSwap' -metric ns/op -tol 10 || true
echo "CI OK"
