#!/bin/sh
# ci.sh — the repo's gate: format, vet, build, full tests, and the race
# run over the packages that host the parallel planning/propagation
# pipeline (load-bearing since the worker pool landed).
set -eu

cd "$(dirname "$0")"

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race (parallel pipeline)"
go test -race ./internal/sim ./internal/core ./internal/pool ./internal/poscache ./internal/linkbudget

echo "CI OK"
