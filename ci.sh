#!/bin/sh
# ci.sh — the repo's gate: format, vet, build, full tests, and the race
# run over the packages that host the parallel planning/propagation
# pipeline (load-bearing since the worker pool landed).
set -eu

cd "$(dirname "$0")"

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== importcheck (zero-dependency policy)"
go run ./tools/importcheck

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race (parallel pipeline + session layer)"
# The backend/proto/faultnet trio includes the seeded chunk-dedup chaos
# equivalence test — reconnect, resume, and replay-dedup all race-checked.
go test -race ./internal/sim ./internal/core ./internal/pool ./internal/poscache ./internal/linkbudget \
    ./internal/backend ./internal/proto ./internal/faultnet


echo "== bench trajectory (advisory, recorded BENCH_sim.json)"
# Warns when the recorded current Fig3aBacklog/DGS wall-clock regressed
# more than 10% past the recorded baseline; refresh the file with `make
# bench` after perf-relevant changes.
go run ./tools/benchjson -diff -o BENCH_sim.json -bench 'BenchmarkFig3aBacklog/DGS$' -metric ns/op -tol 10 || true
echo "CI OK"
