// Command benchjson turns `go test -bench` output (stdin) into the
// BENCH_sim.json perf-trajectory file, so successive PRs can compare
// wall-clock and headline metrics against a recorded baseline.
//
// Usage (see `make bench`):
//
//	go test -run '^$' -bench '...' . | go run ./tools/benchjson -o BENCH_sim.json
//
// The tool parses every benchmark result line into {name, iterations,
// metrics} where metrics maps unit → value (ns/op, B/op, GB-median, ...).
// If the output file already exists, its "baseline" entry is preserved;
// when it has none, the previous "current" becomes the baseline — the
// first recorded run therefore anchors the trajectory.
//
// With -merge the parsed benchmarks are folded into the existing
// "current" snapshot instead of replacing it wholesale: same-name
// results are overwritten, everything else is preserved. That lets a
// targeted run (say, the epoch-swap benches) refresh its slice of the
// trajectory without re-running the tens-of-minutes mega sims.
//
// With -diff the tool reads an existing trajectory file instead of stdin
// and compares current against baseline for the selected benchmarks and
// metric, printing a WARN line for every regression beyond -tol percent
// (ci.sh runs this as an advisory step; -fail turns warnings into a
// nonzero exit).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Bench is one parsed benchmark result line.
type Bench struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Snapshot is one recorded bench run.
type Snapshot struct {
	Date       string  `json:"date"`
	GoVersion  string  `json:"go_version"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Note       string  `json:"note,omitempty"`
	Benchmarks []Bench `json:"benchmarks"`
}

// File is the BENCH_sim.json layout.
type File struct {
	Baseline *Snapshot `json:"baseline,omitempty"`
	Current  *Snapshot `json:"current"`
}

func parse(lines *bufio.Scanner) []Bench {
	var out []Bench
	for lines.Scan() {
		fields := strings.Fields(lines.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Bench{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		// The tail is value/unit pairs: "123 ns/op 4.5 GB-median ...".
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			b.Metrics[fields[i+1]] = v
		}
		out = append(out, b)
	}
	return out
}

// diffSnapshots compares current against baseline for every benchmark
// whose name matches re and that carries the metric in both snapshots.
// Lower is better for every recorded metric (ns/op, B/op, allocs/op, the
// GB quantiles), so a positive delta beyond tol percent is a regression.
// Returns the number of regressions.
func diffSnapshots(file *File, re *regexp.Regexp, metric string, tol float64) int {
	if file.Baseline == nil || file.Current == nil {
		fmt.Fprintln(os.Stderr, "benchjson: trajectory file lacks a baseline/current pair; nothing to diff")
		return 0
	}
	base := map[string]float64{}
	for _, b := range file.Baseline.Benchmarks {
		if v, ok := b.Metrics[metric]; ok {
			base[b.Name] = v
		}
	}
	compared, regressions := 0, 0
	for _, b := range file.Current.Benchmarks {
		if !re.MatchString(b.Name) {
			continue
		}
		cur, ok := b.Metrics[metric]
		if !ok {
			continue
		}
		bv, ok := base[b.Name]
		if !ok || bv == 0 {
			continue
		}
		compared++
		delta := (cur - bv) / bv * 100
		if delta > tol {
			regressions++
			fmt.Printf("WARN %s %s: %.4g -> %.4g (%+.1f%%, tolerance %.0f%%)\n",
				b.Name, metric, bv, cur, delta, tol)
		} else {
			fmt.Printf("OK   %s %s: %.4g -> %.4g (%+.1f%%)\n",
				b.Name, metric, bv, cur, delta)
		}
	}
	if compared == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no benchmark matching %q carries metric %q in both snapshots\n", re, metric)
	}
	return regressions
}

func main() {
	outPath := flag.String("o", "BENCH_sim.json", "output file")
	note := flag.String("note", "", "annotation stored with this snapshot")
	merge := flag.Bool("merge", false, "fold stdin benchmarks into the existing current snapshot instead of replacing it")
	diff := flag.Bool("diff", false, "compare current vs baseline in the -o file instead of reading stdin")
	benchPat := flag.String("bench", ".*", "with -diff: regexp selecting benchmark names to compare")
	metric := flag.String("metric", "ns/op", "with -diff: metric to compare")
	tol := flag.Float64("tol", 10, "with -diff: warn when current is worse than baseline by more than this percent")
	failOnRegress := flag.Bool("fail", false, "with -diff: exit nonzero when a regression is found")
	flag.Parse()

	if *diff {
		re, err := regexp.Compile(*benchPat)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: bad -bench pattern:", err)
			os.Exit(1)
		}
		raw, err := os.ReadFile(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		var file File
		if err := json.Unmarshal(raw, &file); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if n := diffSnapshots(&file, re, *metric, *tol); n > 0 && *failOnRegress {
			os.Exit(1)
		}
		return
	}

	benches := parse(bufio.NewScanner(os.Stdin))
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	var file, old File
	if prev, err := os.ReadFile(*outPath); err == nil {
		if json.Unmarshal(prev, &old) == nil {
			file.Baseline = old.Baseline
			if file.Baseline == nil {
				file.Baseline = old.Current
			}
		}
	}
	if *merge && old.Current != nil {
		fresh := make(map[string]bool, len(benches))
		for _, b := range benches {
			fresh[b.Name] = true
		}
		kept := make([]Bench, 0, len(old.Current.Benchmarks)+len(benches))
		for _, b := range old.Current.Benchmarks {
			if !fresh[b.Name] {
				kept = append(kept, b)
			}
		}
		benches = append(kept, benches...)
		if *note == "" {
			*note = old.Current.Note
		}
	}
	file.Current = &Snapshot{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Note:       *note,
		Benchmarks: benches,
	}

	enc, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*outPath, append(enc, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(benches), *outPath)
}
