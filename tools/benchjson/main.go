// Command benchjson turns `go test -bench` output (stdin) into the
// BENCH_sim.json perf-trajectory file, so successive PRs can compare
// wall-clock and headline metrics against a recorded baseline.
//
// Usage (see `make bench`):
//
//	go test -run '^$' -bench '...' . | go run ./tools/benchjson -o BENCH_sim.json
//
// The tool parses every benchmark result line into {name, iterations,
// metrics} where metrics maps unit → value (ns/op, B/op, GB-median, ...).
// If the output file already exists, its "baseline" entry is preserved;
// when it has none, the previous "current" becomes the baseline — the
// first recorded run therefore anchors the trajectory.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Bench is one parsed benchmark result line.
type Bench struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Snapshot is one recorded bench run.
type Snapshot struct {
	Date       string  `json:"date"`
	GoVersion  string  `json:"go_version"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Note       string  `json:"note,omitempty"`
	Benchmarks []Bench `json:"benchmarks"`
}

// File is the BENCH_sim.json layout.
type File struct {
	Baseline *Snapshot `json:"baseline,omitempty"`
	Current  *Snapshot `json:"current"`
}

func parse(lines *bufio.Scanner) []Bench {
	var out []Bench
	for lines.Scan() {
		fields := strings.Fields(lines.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Bench{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		// The tail is value/unit pairs: "123 ns/op 4.5 GB-median ...".
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			b.Metrics[fields[i+1]] = v
		}
		out = append(out, b)
	}
	return out
}

func main() {
	outPath := flag.String("o", "BENCH_sim.json", "output file")
	note := flag.String("note", "", "annotation stored with this snapshot")
	flag.Parse()

	benches := parse(bufio.NewScanner(os.Stdin))
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	cur := &Snapshot{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Note:       *note,
		Benchmarks: benches,
	}

	var file File
	if prev, err := os.ReadFile(*outPath); err == nil {
		var old File
		if json.Unmarshal(prev, &old) == nil {
			file.Baseline = old.Baseline
			if file.Baseline == nil {
				file.Baseline = old.Current
			}
		}
	}
	file.Current = cur

	enc, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*outPath, append(enc, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(benches), *outPath)
}
