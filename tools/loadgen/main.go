// Command loadgen drives a running dgs-api with a concurrent closed-loop
// query mix and reports latency percentiles and throughput. It discovers
// the served world through /v1/healthz, synthesizes a seeded deterministic
// query pool over that population, and runs -c workers each issuing its
// next request as soon as the previous one completes.
//
// With -stream N it additionally holds N /v2/plan/stream SSE
// subscriptions open for the run, and with -post-update it POSTs a live
// weather revision to /v2/updates on that interval — together they
// exercise the full update -> epoch swap -> delta broadcast round trip:
// every subscriber must receive the initial plan event, and at least one
// delta whenever an update was accepted.
//
// Against a federated front tier (dgs-api -shards), -shards N adds a
// consistency probe that polls /v2/plan through the run and asserts every
// response carries an N-component epoch vector matching its
// X-World-Epoch-Vector header, with no component ever moving backwards —
// i.e. no torn federated reads under load.
//
// Usage:
//
//	loadgen -addr 127.0.0.1:8041 -c 32 -d 10s
//	loadgen -addr 127.0.0.1:8041 -c 8 -d 5s -stream 4 -post-update 500ms
//	loadgen -addr 127.0.0.1:8045 -c 8 -d 5s -shards 2
//
// Exit status is 1 if any request failed at transport level or returned a
// 4xx/5xx, or if the streaming round trip broke; 429s are counted (they
// are the server shedding load as designed), not failures.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"dgs/internal/cliutil"
	"dgs/internal/metrics"
)

type health struct {
	Sats     int       `json:"sats"`
	Stations int       `json:"stations"`
	Epoch    time.Time `json:"epoch"`
	SlotSec  float64   `json:"slot_s"`
	MaxSpanH float64   `json:"max_span_h"`
}

// query is one templated request and the endpoint class it's tallied under.
type query struct {
	class int // index into classNames
	path  string
}

var classNames = [...]string{"passes", "plan", "linkbudget"}

// buildPool synthesizes the deterministic query mix: pass scans over
// varied anchors and filters, plans at a few granularities, and point
// link budgets. Roughly 60/10/30 passes/plan/linkbudget — plans are the
// expensive minority, link budgets the cheap majority, mirroring how a
// scheduling frontend would use the API.
func buildPool(h health, seed int64) []query {
	rng := rand.New(rand.NewSource(seed))
	spanH := h.MaxSpanH
	anchor := func(maxH float64) string {
		off := time.Duration(rng.Float64() * maxH * float64(time.Hour))
		return h.Epoch.Add(off).Format(time.RFC3339)
	}
	var pool []query
	for i := 0; i < 24; i++ {
		hours := 1 + rng.Intn(3)
		p := fmt.Sprintf("/v1/passes?hours=%d&from=%s", hours, anchor(spanH-float64(hours)))
		switch rng.Intn(3) {
		case 0:
			p += fmt.Sprintf("&sat=%d", rng.Intn(h.Sats))
		case 1:
			p += fmt.Sprintf("&station=%d", rng.Intn(h.Stations))
		}
		pool = append(pool, query{0, p})
	}
	for i := 0; i < 4; i++ {
		pool = append(pool, query{1, fmt.Sprintf("/v1/plan?hours=1&from=%s", anchor(spanH-1))})
	}
	for i := 0; i < 12; i++ {
		pool = append(pool, query{2, fmt.Sprintf("/v1/linkbudget?sat=%d&station=%d&t=%s",
			rng.Intn(h.Sats), rng.Intn(h.Stations), anchor(spanH))})
	}
	return pool
}

// tally is the shared result collector; workers hold the lock only long
// enough to record one sample.
type tally struct {
	mu       sync.Mutex
	lat      [len(classNames)]metrics.Dist // milliseconds
	status   map[int]int
	failures int
	total    int
}

func (t *tally) record(class, code int, d time.Duration, failed bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total++
	t.status[code]++
	if failed {
		t.failures++
		return
	}
	if code == http.StatusOK {
		t.lat[class].Add(float64(d) / float64(time.Millisecond))
	}
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8041", "dgs-api address")
	conc := flag.Int("c", 16, "concurrent closed-loop clients")
	dur := flag.Duration("d", 5*time.Second, "run duration")
	seed := cliutil.SeedFlag("query-mix")
	stream := flag.Int("stream", 0, "plan-stream SSE subscriptions held open for the run")
	postUpdate := flag.Duration("post-update", 0, "interval between live weather revisions POSTed to /v2/updates (0 disables)")
	shards := flag.Int("shards", 0, "expected shard count of a federated front tier; polls /v2/plan through the run asserting every response carries a consistent N-component epoch vector (0 disables)")
	flag.Parse()
	cliutil.Seed("seed", *seed)
	cliutil.PositiveInt("c", *conc)
	cliutil.PositiveDuration("d", *dur)
	cliutil.NonNegativeInt("stream", *stream)
	cliutil.NonNegativeInt("shards", *shards)

	base := "http://" + *addr
	client := &http.Client{
		Timeout:   30 * time.Second,
		Transport: &http.Transport{MaxIdleConnsPerHost: *conc},
	}

	resp, err := client.Get(base + "/v1/healthz")
	if err != nil {
		log.Fatalf("loadgen: %s unreachable: %v", base, err)
	}
	var h health
	err = json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if err != nil {
		log.Fatalf("loadgen: bad healthz: %v", err)
	}
	pool := buildPool(h, *seed)
	log.Printf("loadgen: %d sats / %d stations, %d query templates, %d clients for %v",
		h.Sats, h.Stations, len(pool), *conc, *dur)

	t := &tally{status: make(map[int]int)}
	deadline := time.Now().Add(*dur)

	// SSE subscribers connect before the query storm so each provably
	// observes every update applied during the run. They read until the
	// run deadline cancels the request.
	streamCtx, cancelStreams := context.WithCancel(context.Background())
	defer cancelStreams()
	type streamResult struct {
		plans, deltas int
		err           error
	}
	streamDone := make(chan streamResult, *stream)
	streamClient := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: *stream + 1}}
	for i := 0; i < *stream; i++ {
		go func() {
			var sr streamResult
			req, err := http.NewRequestWithContext(streamCtx, http.MethodGet, base+"/v2/plan/stream", nil)
			if err != nil {
				sr.err = err
				streamDone <- sr
				return
			}
			resp, err := streamClient.Do(req)
			if err != nil {
				sr.err = err
				streamDone <- sr
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				sr.err = fmt.Errorf("stream status %d", resp.StatusCode)
				streamDone <- sr
				return
			}
			r := bufio.NewReader(resp.Body)
			for {
				line, err := r.ReadString('\n')
				if err != nil {
					streamDone <- sr // deadline cancel or server drain
					return
				}
				switch strings.TrimRight(line, "\n") {
				case "event: plan":
					sr.plans++
				case "event: delta":
					sr.deltas++
				}
			}
		}()
	}

	// The updater revises the live weather on a fixed cadence; every
	// accepted POST is one epoch swap the streams must observe.
	var updMu sync.Mutex
	applied, updateRejected, updateFailed := 0, 0, 0
	updaterDone := make(chan struct{})
	if *postUpdate > 0 {
		go func() {
			defer close(updaterDone)
			tick := time.NewTicker(*postUpdate)
			defer tick.Stop()
			for n := uint64(1); time.Now().Before(deadline); n++ {
				<-tick.C
				body := fmt.Sprintf(`{"weather":{"seed":%d,"err_fraction":0.3}}`, n)
				resp, err := client.Post(base+"/v2/updates", "application/json", strings.NewReader(body))
				updMu.Lock()
				if err != nil {
					updateFailed++
				} else {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					switch resp.StatusCode {
					case http.StatusOK:
						applied++
					case http.StatusTooManyRequests:
						updateRejected++
					default:
						updateFailed++
					}
				}
				updMu.Unlock()
			}
		}()
	} else {
		close(updaterDone)
	}

	// The federation checker polls /v2/plan concurrently with the query
	// storm: every response must carry the expected N-component epoch
	// vector, the body vector must equal the header's (a mismatch would be
	// a torn render), and sequential reads must never observe a component
	// going backwards (worlds publish atomically, so a regression would be
	// a torn federated read).
	type vecResult struct {
		checked, degraded, failures int
	}
	vecDone := make(chan vecResult, 1)
	if *shards > 0 {
		go func() {
			var vr vecResult
			var last []uint64
			for time.Now().Before(deadline) {
				resp, err := client.Get(base + "/v2/plan")
				if err != nil {
					vr.failures++
					continue
				}
				body, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusTooManyRequests {
					continue // shed load, not a consistency signal
				}
				if rerr != nil || resp.StatusCode != http.StatusOK {
					log.Printf("loadgen: epoch-vector probe: status %d err %v", resp.StatusCode, rerr)
					vr.failures++
					continue
				}
				var env struct {
					EpochVec []uint64 `json:"epoch_vector"`
					Degraded bool     `json:"degraded"`
				}
				if err := json.Unmarshal(body, &env); err != nil {
					log.Printf("loadgen: epoch-vector probe: bad body: %v", err)
					vr.failures++
					continue
				}
				vr.checked++
				if env.Degraded {
					vr.degraded++
				}
				if len(env.EpochVec) != *shards {
					log.Printf("loadgen: epoch vector %v has %d components, want %d", env.EpochVec, len(env.EpochVec), *shards)
					vr.failures++
					continue
				}
				var hdrWant strings.Builder
				for i, e := range env.EpochVec {
					if i > 0 {
						hdrWant.WriteByte(',')
					}
					fmt.Fprintf(&hdrWant, "%d", e)
				}
				if hdr := resp.Header.Get("X-World-Epoch-Vector"); hdr != hdrWant.String() {
					log.Printf("loadgen: torn render: header vector %q != body vector %q", hdr, hdrWant.String())
					vr.failures++
					continue
				}
				if last != nil {
					for i := range last {
						if env.EpochVec[i] < last[i] {
							log.Printf("loadgen: torn federated read: component %d went %d -> %d", i, last[i], env.EpochVec[i])
							vr.failures++
						}
					}
				}
				last = env.EpochVec
			}
			vecDone <- vr
		}()
	}

	var wg sync.WaitGroup
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed*1_000_003 + int64(w)))
			for time.Now().Before(deadline) {
				q := pool[rng.Intn(len(pool))]
				t0 := time.Now()
				resp, err := client.Get(base + q.path)
				if err != nil {
					t.record(q.class, 0, 0, true)
					continue
				}
				_, rerr := io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				failed := rerr != nil || resp.StatusCode >= 500 || resp.StatusCode == http.StatusBadRequest
				t.record(q.class, resp.StatusCode, time.Since(t0), failed)
			}
		}(w)
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)
	<-updaterDone

	// Give in-flight deltas a beat to reach the subscribers, then end the
	// streams and collect.
	streamFailures := 0
	var streamPlans, streamDeltas int
	if *stream > 0 {
		time.Sleep(200 * time.Millisecond)
		cancelStreams()
		for i := 0; i < *stream; i++ {
			sr := <-streamDone
			streamPlans += sr.plans
			streamDeltas += sr.deltas
			switch {
			case sr.err != nil:
				log.Printf("loadgen: stream %d: %v", i, sr.err)
				streamFailures++
			case sr.plans != 1:
				log.Printf("loadgen: stream %d: %d plan events, want exactly 1", i, sr.plans)
				streamFailures++
			case applied > 0 && sr.deltas == 0:
				log.Printf("loadgen: stream %d: no delta despite %d applied updates", i, applied)
				streamFailures++
			}
		}
	}

	fmt.Printf("\n%d requests in %v (%.0f req/s)\n", t.total, elapsed.Round(time.Millisecond), float64(t.total)/elapsed.Seconds())
	for code, n := range t.status {
		if code == 0 {
			fmt.Printf("  transport errors: %d\n", n)
			continue
		}
		fmt.Printf("  HTTP %d: %d\n", code, n)
	}
	for i, name := range classNames {
		d := &t.lat[i]
		if d.N() == 0 {
			continue
		}
		fmt.Printf("  %-10s n=%-6d p50=%.2fms p99=%.2fms max=%.2fms\n",
			name, d.N(), d.Median(), d.Percentile(99), d.Max())
	}
	if *stream > 0 || *postUpdate > 0 {
		fmt.Printf("  live: %d updates applied (%d shed), %d streams saw %d plans + %d deltas\n",
			applied, updateRejected, *stream, streamPlans, streamDeltas)
	}
	vecFailures := 0
	if *shards > 0 {
		vr := <-vecDone
		vecFailures = vr.failures
		if vr.checked == 0 {
			log.Print("loadgen: epoch-vector probe never completed a check")
			vecFailures++
		}
		fmt.Printf("  federation: %d epoch-vector checks over %d shards (%d degraded responses)\n",
			vr.checked, *shards, vr.degraded)
	}
	if t.failures > 0 || streamFailures > 0 || updateFailed > 0 || vecFailures > 0 {
		fmt.Printf("FAIL: %d failed requests, %d broken streams, %d failed updates, %d federation violations\n",
			t.failures, streamFailures, updateFailed, vecFailures)
		os.Exit(1)
	}
}
