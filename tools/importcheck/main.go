// Command importcheck enforces the repo's zero-dependency policy: every
// import in every Go file must be either part of the standard library or
// internal to this module. The module has no require directives, so a
// foreign import would fail the build anyway — but only at the first `go
// build` after it sneaks in, with a confusing resolution error. This check
// fails fast with a clear message and runs in CI.
//
// Heuristic: an import path rooted in the module name is internal; a first
// path segment without a dot is standard library ("fmt", "encoding/json",
// "golang.org/x/..." has a dot and is foreign). This is the same rule the
// go command used for GOPATH-era vendoring and holds for every stdlib
// package.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// moduleName extracts the module path from go.mod.
func moduleName(root string) (string, error) {
	raw, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if name, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(name), nil
		}
	}
	return "", fmt.Errorf("no module directive in %s/go.mod", root)
}

// allowed reports whether an import path is stdlib or module-internal.
func allowed(path, module string) bool {
	if path == module || strings.HasPrefix(path, module+"/") {
		return true
	}
	first, _, _ := strings.Cut(path, "/")
	return !strings.Contains(first, ".")
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	module, err := moduleName(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "importcheck:", err)
		os.Exit(2)
	}

	var bad []string
	fset := token.NewFileSet()
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// Skip VCS internals and testdata (may hold intentionally
			// unbuildable fixtures).
			switch d.Name() {
			case ".git", "testdata":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if !allowed(p, module) {
				bad = append(bad, fmt.Sprintf("%s: imports %q", path, p))
			}
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "importcheck:", err)
		os.Exit(2)
	}
	if len(bad) > 0 {
		fmt.Fprintf(os.Stderr, "importcheck: %d import(s) outside stdlib and module %q:\n", len(bad), module)
		for _, b := range bad {
			fmt.Fprintln(os.Stderr, "  "+b)
		}
		os.Exit(1)
	}
	fmt.Printf("importcheck: all imports stdlib or %s-internal\n", module)
}
